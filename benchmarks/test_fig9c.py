"""Figure 9(c): page-load times under the dynamic web workload.

Paper: CellFi reduces median page completion time 2.3x vs Wi-Fi and ~8% vs
LTE (LTE is slightly better at small percentiles but has a heavy tail).
Medians here are censored: unfinished pages count as infinitely slow, so a
technology cannot look fast by starving its hard clients.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.large_scale import (
    TECH_CELLFI,
    TECH_LTE,
    TECH_WIFI,
    run_page_load_times,
)
from repro.utils.render import format_table


def test_fig9c_page_load_times(benchmark, report):
    if full_scale():
        seeds, n_aps, duration = list(range(1, 6)), 10, 60.0
    else:
        seeds, n_aps, duration = [1, 2], 8, 20.0
    result = once(
        benchmark,
        run_page_load_times,
        seeds,
        n_aps=n_aps,
        duration_s=duration,
    )

    med = {t: result.median_s(t) for t in result.load_times_s}

    assert med[TECH_CELLFI] <= med[TECH_WIFI], "paper: CellFi 2.3x faster than af"
    assert med[TECH_CELLFI] <= 1.25 * med[TECH_LTE], "paper: ~LTE at the median"
    assert result.completion_fraction(TECH_CELLFI) >= result.completion_fraction(
        TECH_WIFI
    ), "CellFi finishes at least as many pages"

    rows = []
    for tech in (TECH_WIFI, TECH_LTE, TECH_CELLFI):
        times = result.load_times_s[tech]
        rows.append(
            [
                tech,
                "inf" if med[tech] == float("inf") else f"{med[tech]:.2f} s",
                f"{np.percentile(times, 90):.2f} s" if times else "-",
                f"{result.completion_fraction(tech) * 100:.0f}%",
            ]
        )
    speedup = med[TECH_WIFI] / max(med[TECH_CELLFI], 1e-9)
    rows.append(["CellFi vs af speedup", "2.3x (paper)", f"{speedup:.1f}x", ""])
    report(
        "fig9c",
        format_table(
            ["tech", "median PLT (censored)", "p90 (completed)", "completed"],
            rows,
            title="Figure 9(c) page load times",
        ),
    )
