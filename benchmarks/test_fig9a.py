"""Figure 9(a): coverage (connected users) versus AP density.

Paper: CellFi improves coverage over both Wi-Fi and LTE at every density;
at 14 APs x 6 clients, +37% vs Wi-Fi and +16% vs LTE, with CellFi staying
above 90% connected.
"""

from conftest import full_scale, once

from repro.experiments.large_scale import (
    TECH_CELLFI,
    TECH_LTE,
    TECH_WIFI,
    run_coverage_vs_density,
)
from repro.utils.render import format_table


def test_fig9a_coverage_vs_density(benchmark, report):
    if full_scale():
        densities, seeds, epochs, wifi_s = (6, 8, 10, 12, 14), range(1, 11), 15, 6.0
    else:
        densities, seeds, epochs, wifi_s = (6, 10, 14), (1, 2), 10, 3.0
    result = once(
        benchmark,
        run_coverage_vs_density,
        densities,
        list(seeds),
        epochs=epochs,
        wifi_duration_s=wifi_s,
    )

    cellfi = result.series(TECH_CELLFI)
    lte = result.series(TECH_LTE)
    wifi = result.series(TECH_WIFI)

    # Shape assertions at the densest point (the paper's quoted numbers).
    dense = -1
    assert cellfi[dense] >= lte[dense], "CellFi beats plain LTE"
    assert cellfi[dense] >= wifi[dense] + 0.10, "CellFi well above 802.11af"
    assert cellfi[dense] >= 0.90, "paper: CellFi keeps > 90% connected"
    # Every density: CellFi >= both baselines.
    for i in range(len(densities)):
        assert cellfi[i] >= lte[i] - 0.02
        assert cellfi[i] >= wifi[i] - 0.02

    rows = []
    for i, density in enumerate(densities):
        rows.append(
            [
                density,
                f"{wifi[i] * 100:.0f}%",
                f"{lte[i] * 100:.0f}%",
                f"{cellfi[i] * 100:.0f}%",
            ]
        )
    gain_wifi = (cellfi[dense] - wifi[dense]) / max(wifi[dense], 1e-9)
    gain_lte = (cellfi[dense] - lte[dense]) / max(lte[dense], 1e-9)
    rows.append(["gain@dense", f"+{gain_wifi * 100:.0f}% vs af", f"+{gain_lte * 100:.0f}% vs LTE", "paper: +37%/+16%"])
    report(
        "fig9a",
        format_table(
            ["APs", "802.11af", "LTE", "CellFi"], rows, title="Figure 9(a) coverage"
        ),
    )
