"""Robustness: the Figure 6 scenario under database outages and faults.

Not a paper figure -- the paper's database never failed during the
measurements -- but the regulatory story it tells (ETSI EN 301 598
vacate-within-60 s) only matters when the database *does* fail.  The
benchmark replays Figure 6 through the fault-injectable transport and
reports throughput loss versus outage duration: outages shorter than the
deadline are free (grace mode rides the cached lease), longer ones cost a
forced vacate plus the 96 s reboot + 56 s cell search to come back.
"""

from conftest import full_scale, once

from repro.experiments.db_outage import db_outage_cell
from repro.utils.render import format_table


def _sweep():
    durations = (15.0, 45.0, 90.0, 180.0)
    seeds = (1, 2, 3) if full_scale() else (1,)
    rows = []
    for duration in durations:
        cells = [db_outage_cell(seed=s, outage_s=duration) for s in seeds]
        loss = sum(c["throughput_loss_fraction"] for c in cells) / len(cells)
        rows.append(
            [
                f"{duration:.0f} s",
                f"{loss:.3f}",
                sum(c["forced_vacates"] for c in cells),
                sum(c["graces"] for c in cells),
                sum(c["violations"] for c in cells),
            ]
        )
        assert all(c["compliant"] for c in cells), "ETSI violation under faults"
    return rows


def test_db_outage_loss_vs_duration(benchmark, report):
    rows = once(benchmark, _sweep)

    losses = [float(r[1]) for r in rows]
    vacates = [r[2] for r in rows]
    assert losses[0] == 0.0, "a 15 s outage must be absorbed by grace mode"
    assert vacates[0] == 0
    assert losses[-1] > 0.0, "a 180 s outage must force a vacate"
    assert vacates[-1] >= 1
    assert losses == sorted(losses), "loss is monotone in outage duration"

    table = format_table(
        ["outage", "throughput loss", "forced vacates", "graces", "violations"],
        rows,
        title="Throughput loss vs database-outage duration",
    )
    report("db_outage", table)
