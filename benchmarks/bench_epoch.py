#!/usr/bin/env python
"""Benchmark the LTE epoch hot path: scalar vs vectorized vs incremental.

Times ``LteNetworkSimulator.run_epoch`` under saturated demand on seeded
random deployments at several cell counts, and writes the measurements to
``BENCH_epoch.json`` at the repository root.

The scalar (reference) backend is quadratic in cells per subchannel and
becomes very slow past ~50 cells, so by default it is only timed up to
``--max-scalar-cells`` (50); larger sizes record the vectorized backend
alone.  Both backends are bit-identical for the same seeds
(``tests/test_lte_network_vectorized.py``), so the speedup is free.

``--activity-sweep`` instead benchmarks the *incremental* backend against
the dense vectorized backend while sweeping per-epoch activity (the
fraction of cells whose clients move and carry traffic each epoch),
writing ``BENCH_incremental.json``.  With ``--smoke`` the sweep also runs
the scalar oracle with the same culling horizon and asserts per-epoch
digest equality plus dirty-counter sanity (the CI job).

``--city`` benchmarks the spatial shard engine
(:class:`repro.sim.shard.ShardedNetwork`) on a city-scale deployment
(1000 APs x 10000 UEs) across shard counts, asserting cross-arm digest
equality and writing ``BENCH_city.json``.  ``--shard-smoke`` is the
CI-sized variant: a 2-shard process-mode run with mobility *and*
cross-shard handover churn whose per-epoch digests must equal the
unsharded incremental backend's.

Usage::

    PYTHONPATH=src python benchmarks/bench_epoch.py                    # full run
    PYTHONPATH=src python benchmarks/bench_epoch.py --smoke            # quick CI run
    PYTHONPATH=src python benchmarks/bench_epoch.py --activity-sweep   # incremental
    PYTHONPATH=src python benchmarks/bench_epoch.py --city             # shard sweep
    PYTHONPATH=src python benchmarks/bench_epoch.py --shard-smoke      # shard CI gate
    PYTHONPATH=src python benchmarks/bench_epoch.py --gain-fill        # fill kernels
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import math
import os
import pathlib
import statistics
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lte.network import (
    BACKEND_INCREMENTAL,
    BACKEND_SCALAR,
    BACKEND_VECTORIZED,
    AllSubchannelsPolicy,
    EpochResult,
    LteNetworkSimulator,
)
from repro.phy import vecmath
from repro.phy.propagation import (
    FILL_BATCHED,
    FILL_SCALAR,
    CompositeChannel,
    GainMatrixCache,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.shard import (
    ChaosEvent,
    ChaosPolicy,
    ShardDegradedWarning,
    ShardedNetwork,
    SupervisionConfig,
)
from repro.sim.topology import (
    Topology,
    grid_partition,
    random_topology,
    reassociate_strongest,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_epoch.json"
INCREMENTAL_OUTPUT_PATH = REPO_ROOT / "BENCH_incremental.json"
CITY_OUTPUT_PATH = REPO_ROOT / "BENCH_city.json"
SHARD_SMOKE_OUTPUT_PATH = REPO_ROOT / "BENCH_shard_smoke.json"
CHAOS_SMOKE_OUTPUT_PATH = REPO_ROOT / "BENCH_chaos_smoke.json"
OBS_SHARD_SMOKE_OUTPUT_PATH = REPO_ROOT / "BENCH_obs_shard_smoke.json"
OBS_SHARD_TRACE_PATH = REPO_ROOT / "obs-shard-smoke-trace.json"
OBS_SHARD_JSONL_PATH = REPO_ROOT / "obs-shard-smoke.jsonl"
GAINFILL_OUTPUT_PATH = REPO_ROOT / "BENCH_gainfill.json"
GAINFILL_SMOKE_OUTPUT_PATH = REPO_ROOT / "BENCH_gainfill_smoke.json"

DEFAULT_SIZES = (10, 50, 200)
DEFAULT_ACTIVITIES = (0.05, 0.10, 0.25, 1.00)
SWEEP_CELLS = 200
SMOKE_SWEEP_CELLS = 20
CLIENTS_PER_AP = 6
SEED = 2017
AREA_M = 2000.0
#: Path-loss horizon for the sweep's incremental arm: at 600 MHz urban
#: Hata ~135 dB is ~1.7 km, so distant cells across the 2 km area are
#: culled while every plausible interferer stays live.
SWEEP_CULL_LOSS_DB = 135.0
#: Offered load per active client in the sweep (bits per 1 s epoch).  The
#: activity sweep models a lightly loaded network -- bounded demand, not
#: saturation -- so the scheduler serves the backlog and goes quiet
#: instead of burning every mini-slot (in both arms alike).
SWEEP_DEMAND_BITS = 1e5

#: City shard sweep: 1000 APs x 10 clients = 10000 UEs at the same AP
#: density as the 200-cell activity sweep (50 APs per km^2), so per-cell
#: physics (audible-interferer counts under the cull horizon) match.
CITY_CELLS = 1000
CITY_CLIENTS_PER_AP = 10
CITY_DENSITY_PER_KM2 = 50.0
CITY_SHARDS = (1, 2, 4)


def _city_area_m(n_cells: int) -> float:
    return math.sqrt(n_cells / CITY_DENSITY_PER_KM2) * 1000.0


def _bench_channel() -> CompositeChannel:
    return CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(sigma_db=7.0, seed=SEED)
    )


def _bench_topology(n_cells: int) -> Topology:
    rng = np.random.default_rng(SEED)
    topology = random_topology(
        rng,
        n_aps=n_cells,
        clients_per_ap=CLIENTS_PER_AP,
        area_m=AREA_M,
        client_range_m=600.0,
    )
    return reassociate_strongest(topology, _bench_channel().loss_db)


def build_network(
    n_cells: int,
    backend: str,
    cull_loss_db: Optional[float] = None,
    shard_ap_ids: Optional[Sequence[int]] = None,
    gain_fill: str = FILL_BATCHED,
) -> LteNetworkSimulator:
    """A seeded deployment identical across backends (and shard views)."""
    return LteNetworkSimulator(
        topology=_bench_topology(n_cells),
        grid=ResourceGrid(5e6),
        channel=_bench_channel(),
        rngs=RngStreams(SEED),
        backend=backend,
        cull_loss_db=cull_loss_db,
        gain_fill=gain_fill,
        shard_ap_ids=shard_ap_ids,
    )


def time_epochs(net: LteNetworkSimulator, n_epochs: int) -> Dict[str, float]:
    """Wall-clock seconds for the epoch loop (setup excluded)."""
    grid = net.grid
    policy = AllSubchannelsPolicy(
        [ap.ap_id for ap in net.topology.aps], grid.n_subchannels
    )
    demands = {c.client_id: float("inf") for c in net.topology.clients}
    # One untimed warm-up epoch (fills gain cache and rate tables).
    allowed = policy.decide(0, None)
    observations = net.run_epoch(0, allowed, demands).observations
    start = time.perf_counter()
    for epoch in range(1, n_epochs + 1):
        allowed = policy.decide(epoch, observations)
        observations = net.run_epoch(epoch, allowed, demands).observations
    elapsed = time.perf_counter() - start
    return {
        "total_s": elapsed,
        "per_epoch_s": elapsed / n_epochs,
        "epochs": n_epochs,
    }


def run_benchmark(
    sizes: List[int], n_epochs: int, max_scalar_cells: int
) -> Dict:
    results = []
    for n_cells in sizes:
        entry: Dict = {"cells": n_cells, "clients": n_cells * CLIENTS_PER_AP}
        net = build_network(n_cells, BACKEND_VECTORIZED)
        entry["vectorized"] = time_epochs(net, n_epochs)
        print(
            f"{n_cells:4d} cells  vectorized  "
            f"{entry['vectorized']['per_epoch_s'] * 1e3:9.1f} ms/epoch"
        )
        if n_cells <= max_scalar_cells:
            net = build_network(n_cells, BACKEND_SCALAR)
            entry["scalar"] = time_epochs(net, n_epochs)
            entry["speedup"] = (
                entry["scalar"]["per_epoch_s"]
                / entry["vectorized"]["per_epoch_s"]
            )
            print(
                f"{n_cells:4d} cells  scalar      "
                f"{entry['scalar']['per_epoch_s'] * 1e3:9.1f} ms/epoch  "
                f"(speedup {entry['speedup']:.1f}x)"
            )
        else:
            entry["scalar"] = None
            entry["note"] = (
                f"scalar backend skipped above {max_scalar_cells} cells "
                "(reference implementation is too slow; it is bit-identical "
                "to the vectorized backend)"
            )
        results.append(entry)
    return {
        "benchmark": "lte-epoch-backends",
        "seed": SEED,
        "clients_per_ap": CLIENTS_PER_AP,
        "epochs_timed": n_epochs,
        "results": results,
    }


def epoch_digest(result: EpochResult) -> str:
    """Order-independent digest of every client-visible epoch output.

    ``repr`` of a float round-trips the exact IEEE-754 value, so two
    backends hash equal iff they are bit-identical.
    """
    payload = repr(
        (
            sorted(result.served_bits.items()),
            sorted(result.connected.items()),
            [
                (
                    ap_id,
                    obs.n_active_clients,
                    obs.estimated_contenders,
                    [
                        (
                            cid,
                            c.subband_cqi,
                            c.max_subband_cqi,
                            c.interference_detected,
                            sorted(c.scheduled_fraction.items()),
                        )
                        for cid, c in sorted(obs.clients.items())
                    ],
                )
                for ap_id, obs in sorted(result.observations.items())
            ],
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _sweep_scenario(
    n_cells: int, activity: float
) -> Tuple[List[int], Dict[int, float], List[int]]:
    """Deterministic (active AP ids, demands, mover client ids).

    ``activity`` is the fraction of cells that are active: their clients
    carry saturated traffic and one client per active cell moves every
    epoch.  Everything else is idle, which is the regime the incremental
    backend targets (most cells unchanged epoch over epoch).
    """
    n_active = max(1, int(round(activity * n_cells)))
    rng = np.random.default_rng(SEED + 1)
    active_aps = sorted(rng.choice(n_cells, size=n_active, replace=False).tolist())
    reference = build_network(n_cells, BACKEND_VECTORIZED)
    demands: Dict[int, float] = {}
    movers: List[int] = []
    for ap_id in active_aps:
        clients = reference.topology.clients_of(ap_id)
        for client in clients:
            demands[client.client_id] = SWEEP_DEMAND_BITS
        if clients:
            movers.append(clients[0].client_id)
    return active_aps, demands, movers


def _movement_schedule(
    topology: Topology,
    movers: List[int],
    n_epochs: int,
    area_m: float = AREA_M,
) -> List[List[Tuple[int, float, float]]]:
    """Per-epoch absolute positions for the movers, identical across arms."""
    rng = np.random.default_rng(SEED + 2)
    base = {cid: (topology.client(cid).x, topology.client(cid).y) for cid in movers}
    schedule: List[List[Tuple[int, float, float]]] = []
    for _ in range(n_epochs):
        step = []
        for cid in movers:
            bx, by = base[cid]
            x = min(max(bx + rng.uniform(-50.0, 50.0), 0.0), area_m)
            y = min(max(by + rng.uniform(-50.0, 50.0), 0.0), area_m)
            step.append((cid, x, y))
        schedule.append(step)
    return schedule


def _run_sweep_arm(
    n_cells: int,
    backend: str,
    cull_loss_db: Optional[float],
    demands: Dict[int, float],
    schedule: List[List[Tuple[int, float, float]]],
    collect_digests: bool,
) -> Dict:
    """Time the epoch loop for one backend under the activity scenario.

    Each timed epoch first applies that epoch's client movements (part of
    the workload: the incremental backend pays its row refresh here), then
    runs the epoch.  Epoch 0 is an untimed warm-up so caches are hot in
    every arm.
    """
    net = build_network(n_cells, backend, cull_loss_db=cull_loss_db)
    policy = AllSubchannelsPolicy(
        [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
    )
    allowed = policy.decide(0, None)
    net.run_epoch(0, allowed, demands)  # warm-up, not timed
    digests: List[str] = []
    dirty_aps: List[int] = []
    epoch_times: List[float] = []
    event_apply = 0.0
    # Collect once up front, then keep the collector out of the timed
    # region: generational GC pauses scale with the cached-block heap and
    # would otherwise dominate run-to-run variance.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    for epoch, moves in enumerate(schedule, start=1):
        # Event application (mobility + link refresh) is identical physics
        # in every arm; it is timed separately so ``per_epoch_s`` compares
        # the epoch engines themselves.
        start = time.perf_counter()
        for cid, x, y in moves:
            net.move_client(cid, x, y)
        mid = time.perf_counter()
        result = net.run_epoch(epoch, allowed, demands)
        event_apply += mid - start
        epoch_times.append(time.perf_counter() - mid)
        if collect_digests:
            digests.append(epoch_digest(result))
        if backend == BACKEND_INCREMENTAL:
            dirty_aps.append(net.last_epoch_stats["dirty_aps"])
    if gc_was_enabled:
        gc.enable()
    arm: Dict = {
        "total_s": sum(epoch_times),
        # Median epoch time: one preempted epoch should not skew the
        # backend comparison on a shared machine.
        "per_epoch_s": statistics.median(epoch_times),
        "event_apply_s": event_apply,
        "event_apply_per_epoch_s": event_apply / len(schedule),
        "epochs": len(schedule),
    }
    if collect_digests:
        arm["digests"] = digests
    if backend == BACKEND_INCREMENTAL:
        arm["dirty_aps_per_epoch"] = dirty_aps
        arm["last_epoch_stats"] = dict(net.last_epoch_stats)
    return arm


def run_activity_sweep(
    n_cells: int,
    activities: List[float],
    n_epochs: int,
    check: bool,
    cull_loss_db: float = SWEEP_CULL_LOSS_DB,
) -> Dict:
    """Benchmark incremental vs dense vectorized across activity levels.

    With ``check=True`` a scalar arm with the *same* culling horizon runs
    as the bit-identity oracle: its per-epoch digests must equal the
    incremental arm's, and the incremental dirty counters must match the
    number of cells whose clients moved.
    """
    results = []
    for activity in activities:
        active_aps, demands, movers = _sweep_scenario(n_cells, activity)
        schedule = _movement_schedule(_bench_topology(n_cells), movers, n_epochs)
        entry: Dict = {
            "activity": activity,
            "active_cells": len(active_aps),
            "moving_clients": len(movers),
        }
        entry["vectorized"] = _run_sweep_arm(
            n_cells, BACKEND_VECTORIZED, None, demands, schedule, check
        )
        entry["incremental"] = _run_sweep_arm(
            n_cells, BACKEND_INCREMENTAL, cull_loss_db, demands, schedule, check
        )
        entry["speedup_vs_vectorized"] = (
            entry["vectorized"]["per_epoch_s"]
            / entry["incremental"]["per_epoch_s"]
        )
        if check:
            scalar = _run_sweep_arm(
                n_cells, BACKEND_SCALAR, cull_loss_db, demands, schedule, True
            )
            entry["digest_match"] = (
                scalar["digests"] == entry["incremental"]["digests"]
            )
            if not entry["digest_match"]:
                raise SystemExit(
                    f"digest mismatch at activity {activity}: incremental "
                    "backend diverged from the culled scalar oracle"
                )
            dirty = entry["incremental"]["dirty_aps_per_epoch"]
            # After warm-up only moved clients dirty their serving cell,
            # so the dirty count is bounded by the mover count.
            if any(d > len(movers) for d in dirty):
                raise SystemExit(
                    f"dirty-counter sanity failed at activity {activity}: "
                    f"{dirty} dirty APs for {len(movers)} movers"
                )
            if dirty and max(dirty) == 0:
                raise SystemExit(
                    f"dirty-counter sanity failed at activity {activity}: "
                    "movers never dirtied any AP"
                )
            entry["dirty_counter_ok"] = True
            # Digest payloads served their purpose; keep the JSON small.
            for arm in (entry["vectorized"], entry["incremental"]):
                arm.pop("digests", None)
        results.append(entry)
        check_note = "  digests ok" if check else ""
        print(
            f"activity {activity:5.2f}  ({len(active_aps):3d} cells)  "
            f"vectorized {entry['vectorized']['per_epoch_s'] * 1e3:8.1f} ms  "
            f"incremental {entry['incremental']['per_epoch_s'] * 1e3:8.1f} ms  "
            f"speedup {entry['speedup_vs_vectorized']:5.1f}x{check_note}"
        )
    return {
        "benchmark": "lte-epoch-incremental",
        "seed": SEED,
        "cells": n_cells,
        "clients": n_cells * CLIENTS_PER_AP,
        "clients_per_ap": CLIENTS_PER_AP,
        "cull_loss_db": cull_loss_db,
        "epochs_timed": n_epochs,
        "digest_checked": check,
        "results": results,
    }


# ---------------------------------------------------------------------------
# City-scale shard sweep (--city) and the CI shard gate (--shard-smoke)
# ---------------------------------------------------------------------------


def _city_topology(n_cells: int, clients_per_ap: int, area_m: float) -> Topology:
    # No reassociate_strongest at city scale: re-attachment evaluates every
    # (client, AP) channel gain up front -- n_clients * n_aps shadowing
    # draws in one process before any shard worker exists -- which dwarfs
    # the epochs being measured.  Clients stay with their spawning AP.
    rng = np.random.default_rng(SEED)
    return random_topology(
        rng,
        n_aps=n_cells,
        clients_per_ap=clients_per_ap,
        area_m=area_m,
        client_range_m=600.0,
    )


def build_city_network(
    n_shards: int,
    n_cells: int,
    clients_per_ap: int,
    area_m: float,
    cull_loss_db: float,
    mode: str,
) -> ShardedNetwork:
    def factory(ap_ids):
        return LteNetworkSimulator(
            topology=_city_topology(n_cells, clients_per_ap, area_m),
            grid=ResourceGrid(5e6),
            channel=_bench_channel(),
            rngs=RngStreams(SEED),
            backend=BACKEND_INCREMENTAL,
            cull_loss_db=cull_loss_db,
            shard_ap_ids=ap_ids,
        )

    topology = _city_topology(n_cells, clients_per_ap, area_m)
    return ShardedNetwork(
        topology,
        grid_partition(topology, n_shards),
        factory,
        RngStreams(SEED),
        ResourceGrid(5e6),
        mode=mode,
    )


def _run_city_arm(
    n_shards: int,
    n_cells: int,
    clients_per_ap: int,
    area_m: float,
    cull_loss_db: float,
    mode: str,
    schedule: List[List[Tuple[int, float, float]]],
) -> Dict:
    """Time the city epoch loop for one shard count.

    ``wall_s`` is what the parent waits on ``run_epoch`` (barrier IPC and
    in-worker event application included); ``critical_s`` is the slowest
    worker's in-worker ``run_epoch`` CPU seconds for that barrier, i.e.
    the epoch latency a host with one core per shard would observe
    (process_time, so workers time-slicing one core don't inflate it).
    """
    build_start = time.perf_counter()
    net = build_city_network(
        n_shards, n_cells, clients_per_ap, area_m, cull_loss_db, mode
    )
    try:
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        allowed = policy.decide(0, None)
        net.run_epoch(0, allowed, demands)  # warm-up fills every worker cache
        build_s = time.perf_counter() - build_start
        worker_mode = net.mode
        digests: List[str] = []
        walls: List[float] = []
        criticals: List[float] = []
        event_send = 0.0
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for epoch, moves in enumerate(schedule, start=1):
                start = time.perf_counter()
                for cid, x, y in moves:
                    net.move_client(cid, x, y)
                mid = time.perf_counter()
                result = net.run_epoch(epoch, allowed, demands)
                walls.append(time.perf_counter() - mid)
                event_send += mid - start
                criticals.append(max(net.last_epoch_compute_s))
                digests.append(epoch_digest(result))
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        net.close()
    return {
        "shards": n_shards,
        "worker_mode": worker_mode,
        "build_and_warmup_s": build_s,
        "per_epoch_wall_s": statistics.median(walls),
        "per_epoch_critical_s": statistics.median(criticals),
        "wall_s": walls,
        "critical_s": criticals,
        "event_send_s": event_send,
        "epochs": len(schedule),
        "digests": digests,
    }


def run_city_bench(
    shard_counts: Sequence[int],
    n_epochs: int,
    n_cells: int = CITY_CELLS,
    clients_per_ap: int = CITY_CLIENTS_PER_AP,
    cull_loss_db: float = SWEEP_CULL_LOSS_DB,
    mode: str = "auto",
) -> Dict:
    """Benchmark the shard engine across shard counts on one city map.

    Every arm runs the identical scenario -- saturated demand plus a small
    mobile cohort -- and every arm's per-epoch digests must be bitwise
    equal, so the sweep doubles as a large-scale identity check.
    """
    area_m = _city_area_m(n_cells)
    topology = _city_topology(n_cells, clients_per_ap, area_m)
    stride = max(1, n_cells // 20)
    movers = [
        topology.clients_of(ap_id)[0].client_id
        for ap_id in range(0, n_cells, stride)
        if topology.clients_of(ap_id)
    ]
    schedule = _movement_schedule(topology, movers, n_epochs, area_m=area_m)
    arms: List[Dict] = []
    for n_shards in shard_counts:
        arm = _run_city_arm(
            n_shards, n_cells, clients_per_ap, area_m, cull_loss_db, mode,
            schedule,
        )
        arms.append(arm)
        print(
            f"{n_shards} shard(s) ({arm['worker_mode']:7s})  "
            f"wall {arm['per_epoch_wall_s'] * 1e3:8.1f} ms/epoch  "
            f"critical-path {arm['per_epoch_critical_s'] * 1e3:8.1f} ms/epoch  "
            f"(build+warmup {arm['build_and_warmup_s']:.1f} s)"
        )
    reference = arms[0]
    for arm in arms[1:]:
        if arm["digests"] != reference["digests"]:
            raise SystemExit(
                f"city digest mismatch: the {arm['shards']}-shard arm "
                f"diverged from the {reference['shards']}-shard arm"
            )
    base = next((a for a in arms if a["shards"] == 1), arms[0])
    for arm in arms:
        arm["speedup_wall_vs_1shard"] = (
            base["per_epoch_wall_s"] / arm["per_epoch_wall_s"]
        )
        arm["speedup_critical_vs_1shard"] = (
            base["per_epoch_critical_s"] / arm["per_epoch_critical_s"]
        )
        arm.pop("digests", None)
        print(
            f"{arm['shards']} shard(s)  speedup vs 1-shard: "
            f"wall {arm['speedup_wall_vs_1shard']:.2f}x  "
            f"critical-path {arm['speedup_critical_vs_1shard']:.2f}x"
        )
    return {
        "benchmark": "lte-epoch-shards",
        "seed": SEED,
        "cells": n_cells,
        "clients": n_cells * clients_per_ap,
        "clients_per_ap": clients_per_ap,
        "area_m": area_m,
        "cull_loss_db": cull_loss_db,
        "epochs_timed": n_epochs,
        "moving_clients": len(movers),
        "host_cpu_count": os.cpu_count(),
        "digest_match": True,
        "timing_note": (
            "per_epoch_critical_s is the slowest worker's in-worker "
            "run_epoch CPU seconds per barrier (process_time, immune to "
            "workers time-slicing a shared core) -- the epoch latency on "
            "a host with one core per shard; per_epoch_wall_s "
            "additionally includes barrier IPC, result pickling and, on "
            "hosts with fewer cores than shards, time-slicing between "
            "workers"
        ),
        "results": arms,
    }


def _churn_smoke_scenario(
    n_cells: int, n_shards: int, n_epochs: int
) -> Tuple[Dict, List, List, List[Tuple[int, int]], int]:
    """Mobility + forced-handover churn shared by the shard/chaos gates."""
    _, demands, movers = _sweep_scenario(n_cells, 0.5)
    topology = _bench_topology(n_cells)
    schedule = _movement_schedule(topology, movers, n_epochs)
    plan = grid_partition(topology, n_shards)
    shard_of_ap = {ap_id: k for k, shard in enumerate(plan) for ap_id in shard}
    # One forced handover per epoch; never a no-op re-attach to the current
    # cell, so both engines take the same code path.
    rng = np.random.default_rng(SEED + 3)
    serving = {c.client_id: c.ap_id for c in topology.clients}
    reattaches: List[Tuple[int, int]] = []
    cross_shard = 0
    for epoch in range(n_epochs):
        cid = movers[epoch % len(movers)]
        new_ap = int(rng.integers(n_cells))
        if new_ap == serving[cid]:
            new_ap = (new_ap + 1) % n_cells
        if shard_of_ap[new_ap] != shard_of_ap[serving[cid]]:
            cross_shard += 1
        serving[cid] = new_ap
        reattaches.append((cid, new_ap))
    if not cross_shard:
        raise SystemExit(
            "shard smoke scenario never crosses a shard boundary; "
            "row migration would go unexercised"
        )
    return demands, schedule, plan, reattaches, cross_shard


def _drive_churn(net, demands, schedule, reattaches) -> List[str]:
    """Run the churn scenario on any engine, one digest per measured epoch."""
    policy = AllSubchannelsPolicy(
        [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
    )
    allowed = policy.decide(0, None)
    net.run_epoch(0, allowed, demands)  # warm-up
    digests = []
    for epoch, moves in enumerate(schedule, start=1):
        for cid, x, y in moves:
            net.move_client(cid, x, y)
        cid, new_ap = reattaches[epoch - 1]
        net.reattach_client(cid, new_ap)
        digests.append(epoch_digest(net.run_epoch(epoch, allowed, demands)))
    return digests


#: Gain-fill bench populations: ``(cells, clients_per_ap)``.  The city
#: point (1000 x 10 = 10000 UEs) is the acceptance target for the >=10x
#: batched-vs-scalar build speedup.
GAINFILL_POPULATIONS = ((200, 6), (1000, 10))
GAINFILL_SMOKE_POPULATIONS = ((50, 6),)


def _gainfill_cache(
    topology: Topology, channel: CompositeChannel, fill_mode: str
) -> GainMatrixCache:
    """A cache over the bench deployment, matching the production build.

    No per-AP antennas: the network/shard worker caches radiate
    isotropically, so this times exactly the build they perform.  The
    sector-antenna batch path is identity-pinned by the property suite
    instead; its ``r ** 2`` attenuation stays a scalar loop by the pow
    bit-identity contract, so a sector arm would measure that contract,
    not the kernels.
    """
    return GainMatrixCache(
        channel,
        topology.aps,
        topology.clients,
        cull_loss_db=SWEEP_CULL_LOSS_DB,
        fill_mode=fill_mode,
    )


def run_gainfill_bench(smoke: bool = False) -> Dict:
    """Benchmark full gain-cache builds: batched kernels vs scalar oracle.

    Two channel arms per population: ``pathloss`` (urban Hata only -- the
    kernel ceiling) and ``shadowed`` (Hata + log-normal shadowing, the
    production channel, whose frozen sha256-per-link draw keying bounds
    the reachable speedup; see docs/SIMULATION.md).  Every arm's batched
    and scalar matrices must hash identical over their raw float64 bytes
    -- the bench doubles as a large-scale bit-identity gate, so a kernel
    regression fails the run rather than shifting golden digests.
    """
    populations = GAINFILL_SMOKE_POPULATIONS if smoke else GAINFILL_POPULATIONS
    arms = (
        ("pathloss", lambda: CompositeChannel(UrbanHataPathLoss())),
        ("shadowed", _bench_channel),
    )
    # Force the once-per-process exactness probes now so their cost does
    # not land inside the first timed build (it dwarfs a smoke-sized one).
    vecmath.vectorized_report()
    results: List[Dict] = []
    for n_cells, clients_per_ap in populations:
        area_m = _city_area_m(n_cells)
        topology = _city_topology(n_cells, clients_per_ap, area_m)
        links = len(topology.aps) * len(topology.clients)
        entry: Dict = {
            "cells": n_cells,
            "clients": len(topology.clients),
            "links": links,
            "arms": {},
        }
        for arm_name, channel_factory in arms:
            timings: Dict[str, float] = {}
            digests: Dict[str, str] = {}
            for fill_mode in (FILL_BATCHED, FILL_SCALAR):
                cache = _gainfill_cache(
                    topology, channel_factory(), fill_mode
                )
                gc.collect()
                start = time.perf_counter()
                matrix = cache.matrix()
                timings[fill_mode] = time.perf_counter() - start
                digests[fill_mode] = hashlib.sha256(
                    np.ascontiguousarray(matrix).tobytes()
                ).hexdigest()
            if digests[FILL_BATCHED] != digests[FILL_SCALAR]:
                raise SystemExit(
                    f"gain-fill digest mismatch ({arm_name}, {n_cells} "
                    "cells): the batched kernels diverged from the scalar "
                    "oracle"
                )
            arm = {
                "batched_s": round(timings[FILL_BATCHED], 4),
                "scalar_s": round(timings[FILL_SCALAR], 4),
                "ns_per_link_batched": round(
                    timings[FILL_BATCHED] / links * 1e9, 1
                ),
                "ns_per_link_scalar": round(
                    timings[FILL_SCALAR] / links * 1e9, 1
                ),
                "speedup": round(
                    timings[FILL_SCALAR] / timings[FILL_BATCHED], 2
                ),
                "digest_match": True,
                "matrix_sha256": digests[FILL_BATCHED],
            }
            entry["arms"][arm_name] = arm
            print(
                f"{n_cells:5d} cells x {clients_per_ap:2d} UEs  "
                f"{arm_name:8s}  batched "
                f"{arm['ns_per_link_batched']:7.1f} ns/link  scalar "
                f"{arm['ns_per_link_scalar']:7.1f} ns/link  "
                f"(speedup {arm['speedup']:.1f}x, digests ok)"
            )
        results.append(entry)
    largest = results[-1]
    return {
        "benchmark": "lte-gainfill-kernels",
        "seed": SEED,
        "smoke": smoke,
        "cull_loss_db": SWEEP_CULL_LOSS_DB,
        "vectorized_kernels": vecmath.vectorized_report(),
        "npy_disable_cpu_features": os.environ.get(
            "NPY_DISABLE_CPU_FEATURES", ""
        ),
        "digest_match": True,
        "speedup": largest["arms"]["pathloss"]["speedup"],
        "speedup_shadowed": largest["arms"]["shadowed"]["speedup"],
        "speedup_note": (
            "headline speedup is the pathloss arm at the largest "
            "population (the kernel ceiling); the shadowed arm is bounded "
            "by the frozen sha256-per-link shadowing draw keying, which "
            "stays scalar by contract (golden digests depend on it)"
        ),
        "results": results,
    }


def run_shard_smoke(
    n_cells: int = SMOKE_SWEEP_CELLS,
    n_shards: int = 2,
    n_epochs: int = 6,
    cull_loss_db: float = SWEEP_CULL_LOSS_DB,
    mode: str = "auto",
) -> Dict:
    """CI gate: a sharded run must digest-equal the unsharded incremental.

    Drives identical churn through both engines -- mobility every epoch
    plus one forced re-attachment per epoch, some crossing shard
    boundaries so the max-CQI row migration travels through real worker
    pipes -- and requires bitwise-equal per-epoch digests.
    """
    demands, schedule, plan, reattaches, cross_shard = _churn_smoke_scenario(
        n_cells, n_shards, n_epochs
    )

    def drive(net) -> List[str]:
        return _drive_churn(net, demands, schedule, reattaches)

    # Unsharded reference twice: once through the batched gain-fill
    # kernels (the default every arm below also uses) and once through
    # the scalar fill oracle.  Their digests must match exactly -- this
    # is the smoke gate that pins the kernels bit-identical end to end,
    # not just at the matrix level -- and their prefill seconds record
    # what the kernels buy on this population.
    batched_net = build_network(n_cells, BACKEND_INCREMENTAL, cull_loss_db)
    batched_prefill_s = batched_net.gain_prefill_s
    unsharded = drive(batched_net)
    scalar_net = build_network(
        n_cells, BACKEND_INCREMENTAL, cull_loss_db, gain_fill=FILL_SCALAR
    )
    scalar_prefill_s = scalar_net.gain_prefill_s
    if drive(scalar_net) != unsharded:
        raise SystemExit(
            "shard smoke digest mismatch: the batched gain-fill run "
            "diverged from the scalar fill oracle"
        )

    def build_sharded(**kwargs) -> ShardedNetwork:
        return ShardedNetwork(
            _bench_topology(n_cells),
            plan,
            lambda ap_ids: build_network(
                n_cells, BACKEND_INCREMENTAL, cull_loss_db, shard_ap_ids=ap_ids
            ),
            RngStreams(SEED),
            ResourceGrid(5e6),
            mode=mode,
            **kwargs,
        )

    def timed_drive(net) -> Tuple[List[str], float, str, List[Dict]]:
        try:
            t0 = time.perf_counter()
            digests = drive(net)
            stats = net.worker_build_stats()
            return digests, time.perf_counter() - t0, net.mode, stats
        finally:
            net.close()

    sharded, bare_s, worker_mode, worker_stats = timed_drive(build_sharded())
    if sharded != unsharded:
        first = next(
            i for i, (a, b) in enumerate(zip(sharded, unsharded)) if a != b
        )
        raise SystemExit(
            f"shard smoke digest mismatch: the {n_shards}-shard run "
            f"diverged from the unsharded incremental backend at epoch "
            f"{first + 1}"
        )
    # Supervised arm: same run under the fault-tolerant supervisor (no
    # chaos), recording what heartbeat tracking, journaling and periodic
    # recovery checkpoints cost on top of the bare shard engine.
    supervised, supervised_s, _, _ = timed_drive(build_sharded(supervise=True))
    if supervised != unsharded:
        raise SystemExit(
            "shard smoke digest mismatch: the supervised run diverged "
            "from the unsharded incremental backend"
        )
    overhead_frac = supervised_s / bare_s - 1.0 if bare_s > 0 else 0.0
    print(
        f"shard smoke: {n_shards} shards ({worker_mode} workers), "
        f"{n_cells} cells, {n_epochs} epochs, "
        f"{cross_shard} cross-shard handovers -- digests ok; "
        f"supervision overhead {overhead_frac * 100:+.1f}% "
        f"({bare_s:.2f}s -> {supervised_s:.2f}s)"
    )
    return {
        "benchmark": "lte-epoch-shard-smoke",
        "seed": SEED,
        "cells": n_cells,
        "clients": n_cells * CLIENTS_PER_AP,
        "shards": n_shards,
        "worker_mode": worker_mode,
        "cull_loss_db": cull_loss_db,
        "epochs": n_epochs,
        "cross_shard_handovers": cross_shard,
        "digest_match": True,
        "wall_s": round(bare_s, 4),
        "supervised": {
            "digest_match": True,
            "wall_s": round(supervised_s, 4),
            "overhead_frac": round(overhead_frac, 4),
        },
        "gain_fill": {
            "scalar_oracle_digest_match": True,
            "unsharded_batched_prefill_s": round(batched_prefill_s, 4),
            "unsharded_scalar_prefill_s": round(scalar_prefill_s, 4),
            "prefill_speedup": round(
                scalar_prefill_s / batched_prefill_s, 2
            )
            if batched_prefill_s > 0
            else None,
            "worker_prefill_s": [
                round(s["gain_prefill_s"], 4)
                if s.get("gain_prefill_s") is not None
                else None
                for s in worker_stats
            ],
        },
    }


def run_chaos_smoke(
    n_cells: int = SMOKE_SWEEP_CELLS,
    n_shards: int = 2,
    n_epochs: int = 6,
    cull_loss_db: float = SWEEP_CULL_LOSS_DB,
    mode: str = "auto",
) -> Dict:
    """CI gate: a worker killed mid-run must recover bit-identically.

    Three supervised arms over the same churn scenario as the shard
    smoke: fault-free (the digest reference), one scheduled worker kill
    (SIGKILL under process workers) that must respawn from checkpoint and
    replay its journal, and a zero-retry-budget kill that must degrade
    the shard to inline execution with a structured warning -- all three
    digest-equal to the unsharded incremental backend.
    """
    demands, schedule, plan, reattaches, cross_shard = _churn_smoke_scenario(
        n_cells, n_shards, n_epochs
    )
    kill_epoch = max(1, n_epochs // 2)
    chaos = ChaosPolicy(events=(ChaosEvent("kill", kill_epoch, n_shards - 1),))

    def drive_supervised(
        retry_budget: int, with_chaos: bool
    ) -> Tuple[List[str], Dict[str, int], str]:
        net = ShardedNetwork(
            _bench_topology(n_cells),
            plan,
            lambda ap_ids: build_network(
                n_cells, BACKEND_INCREMENTAL, cull_loss_db, shard_ap_ids=ap_ids
            ),
            RngStreams(SEED),
            ResourceGrid(5e6),
            mode=mode,
            supervision=SupervisionConfig(
                retry_budget=retry_budget, checkpoint_every=2
            ),
            chaos=chaos if with_chaos else None,
        )
        try:
            digests = _drive_churn(net, demands, schedule, reattaches)
            return digests, dict(net.supervisor.stats), net.mode
        finally:
            net.close()

    unsharded = _drive_churn(
        build_network(n_cells, BACKEND_INCREMENTAL, cull_loss_db),
        demands,
        schedule,
        reattaches,
    )
    fault_free, _, worker_mode = drive_supervised(3, with_chaos=False)
    if fault_free != unsharded:
        raise SystemExit(
            "chaos smoke: fault-free supervised digests diverged from the "
            "unsharded incremental backend"
        )
    killed, stats, _ = drive_supervised(3, with_chaos=True)
    if killed != unsharded:
        first = next(
            i for i, (a, b) in enumerate(zip(killed, unsharded)) if a != b
        )
        raise SystemExit(
            f"chaos smoke: recovery after the epoch-{kill_epoch} worker "
            f"kill diverged from the fault-free run at epoch {first + 1}"
        )
    if stats["restarts"] < 1 or stats["crashes"] < 1:
        raise SystemExit(
            f"chaos smoke: the scheduled kill was not recovered as a "
            f"crash (stats: {stats})"
        )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        degraded, degraded_stats, _ = drive_supervised(0, with_chaos=True)
    degrade_warned = any(
        issubclass(w.category, ShardDegradedWarning) for w in caught
    )
    if degraded != unsharded:
        raise SystemExit(
            "chaos smoke: the degraded-to-inline run diverged from the "
            "fault-free run"
        )
    if degraded_stats["degraded"] < 1 or not degrade_warned:
        raise SystemExit(
            f"chaos smoke: exhausting a zero retry budget must degrade "
            f"the shard inline with a ShardDegradedWarning "
            f"(stats: {degraded_stats}, warned: {degrade_warned})"
        )
    print(
        f"chaos smoke: {n_shards} shards ({worker_mode} workers), "
        f"kill@{kill_epoch} recovered (restarts={stats['restarts']}, "
        f"replayed_ops={stats['replayed_ops']}), budget-0 degraded "
        f"inline with warning -- digests ok"
    )
    return {
        "benchmark": "lte-epoch-chaos-smoke",
        "seed": SEED,
        "cells": n_cells,
        "clients": n_cells * CLIENTS_PER_AP,
        "shards": n_shards,
        "worker_mode": worker_mode,
        "cull_loss_db": cull_loss_db,
        "epochs": n_epochs,
        "cross_shard_handovers": cross_shard,
        "kill_epoch": kill_epoch,
        "digest_match": True,
        "recovery": {key: int(value) for key, value in sorted(stats.items())},
        "degraded": {
            key: int(value) for key, value in sorted(degraded_stats.items())
        },
        "degrade_warning": True,
    }


def run_obs_shard_smoke(
    n_cells: int = SMOKE_SWEEP_CELLS,
    n_shards: int = 2,
    n_epochs: int = 6,
    cull_loss_db: float = SWEEP_CULL_LOSS_DB,
    mode: str = "auto",
) -> Dict:
    """CI gate for the cross-shard telemetry plane.

    Runs the chaos-smoke scenario (supervised 2-shard run with one
    scheduled worker kill) twice -- untraced and traced -- and asserts:

    * the traced run's per-epoch digests equal the untraced run's
      (telemetry is digest-neutral even across a kill + replay);
    * the merged timeline contains spans shipped from *every* shard
      worker, supervisor barrier-phase spans, and the respawn/replay
      recovery spans;
    * merged per-shard metric totals account for every epoch exactly
      once despite the journal replay.

    Writes the merged timeline (Chrome trace + JSONL) next to
    ``BENCH_obs_shard_smoke.json`` for ``repro.obs.validate`` and
    ``repro.cli obs-report`` to consume (``make obs-shard-smoke``).
    """
    from repro.obs import Telemetry, activated
    from repro.obs.report import barrier_report

    demands, schedule, plan, reattaches, cross_shard = _churn_smoke_scenario(
        n_cells, n_shards, n_epochs
    )
    kill_epoch = max(1, n_epochs // 2)
    chaos = ChaosPolicy(events=(ChaosEvent("kill", kill_epoch, n_shards - 1),))

    def drive_supervised(tel) -> Tuple[List[str], Dict[str, int], str, float]:
        net = ShardedNetwork(
            _bench_topology(n_cells),
            plan,
            lambda ap_ids: build_network(
                n_cells, BACKEND_INCREMENTAL, cull_loss_db, shard_ap_ids=ap_ids
            ),
            RngStreams(SEED),
            ResourceGrid(5e6),
            mode=mode,
            supervision=SupervisionConfig(retry_budget=3, checkpoint_every=2),
            chaos=chaos,
        )
        try:
            t0 = time.perf_counter()
            digests = _drive_churn(net, demands, schedule, reattaches)
            wall = time.perf_counter() - t0
            stats = dict(net.supervisor.stats)
            worker_mode = net.mode
        finally:
            net.close()
        return digests, stats, worker_mode, wall

    untraced, _, worker_mode, untraced_s = drive_supervised(None)
    tel = Telemetry(trace=True)
    with activated(tel):
        traced, stats, _, traced_s = drive_supervised(tel)
    if traced != untraced:
        first = next(
            i for i, (a, b) in enumerate(zip(traced, untraced)) if a != b
        )
        raise SystemExit(
            f"obs shard smoke: tracing changed the run -- digests diverged "
            f"at epoch {first + 1}"
        )
    if stats["restarts"] < 1:
        raise SystemExit(
            f"obs shard smoke: the scheduled kill was not recovered "
            f"(stats: {stats})"
        )
    names = {r.name for r in tel.tracer.records}
    for required in (
        "shard.barrier.partial",
        "shard.barrier.commit",
        "shard.respawn",
        "shard.replay",
    ):
        if required not in names:
            raise SystemExit(
                f"obs shard smoke: merged timeline is missing the "
                f"{required!r} span"
            )
    shards_seen = sorted(
        {
            r.args["shard"]
            for r in tel.tracer.records
            if isinstance(r.args.get("shard"), int)
        }
    )
    if shards_seen != list(range(n_shards)):
        raise SystemExit(
            f"obs shard smoke: expected spans from shards "
            f"{list(range(n_shards))}, got {shards_seen}"
        )
    # Exactly-once accounting: each shard contributed each measured epoch
    # (plus warm-up) once, no matter how the replay re-executed it.
    counters = tel.registry.snapshot()["counters"]
    for k in range(n_shards):
        epochs_counted = counters.get(f"shard{k}.lte.epochs", 0.0)
        if epochs_counted != float(n_epochs + 1):
            raise SystemExit(
                f"obs shard smoke: shard {k} merged {epochs_counted} epoch "
                f"ticks, expected {n_epochs + 1} (duplicated or dropped "
                f"payloads)"
            )
    tel.tracer.write_chrome(str(OBS_SHARD_TRACE_PATH))
    tel.tracer.write_jsonl(str(OBS_SHARD_JSONL_PATH))
    report = barrier_report([r.to_dict() for r in tel.tracer.records])
    overhead_frac = traced_s / untraced_s - 1.0 if untraced_s > 0 else 0.0
    print(
        f"obs shard smoke: {n_shards} shards ({worker_mode} workers), "
        f"kill@{kill_epoch} -- digests ok, {len(tel.tracer)} merged trace "
        f"records from shards {shards_seen} + supervisor; tracing overhead "
        f"{overhead_frac * 100:+.1f}% ({untraced_s:.2f}s -> {traced_s:.2f}s)"
    )
    print(f"merged chrome trace: {OBS_SHARD_TRACE_PATH}")
    print(f"merged trace jsonl : {OBS_SHARD_JSONL_PATH}")
    return {
        "benchmark": "lte-epoch-obs-shard-smoke",
        "seed": SEED,
        "cells": n_cells,
        "clients": n_cells * CLIENTS_PER_AP,
        "shards": n_shards,
        "worker_mode": worker_mode,
        "cull_loss_db": cull_loss_db,
        "epochs": n_epochs,
        "cross_shard_handovers": cross_shard,
        "kill_epoch": kill_epoch,
        "digest_match": True,
        "trace_records": len(tel.tracer),
        "untraced_wall_s": round(untraced_s, 4),
        "traced_wall_s": round(traced_s, 4),
        "tracing_overhead_frac": round(overhead_frac, 4),
        "recovery": {key: int(value) for key, value in sorted(stats.items())},
        "barrier_report": report,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode: small sizes and few epochs (CI / make bench)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"cell counts to benchmark (default {list(DEFAULT_SIZES)})",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="epochs to time per run"
    )
    parser.add_argument(
        "--max-scalar-cells",
        type=int,
        default=50,
        help="largest size at which the scalar backend is also timed",
    )
    parser.add_argument(
        "--activity-sweep",
        action="store_true",
        help=(
            "benchmark the incremental backend against dense vectorized "
            f"across activity levels; writes {INCREMENTAL_OUTPUT_PATH.name}"
        ),
    )
    parser.add_argument(
        "--activities",
        type=float,
        nargs="+",
        default=None,
        help=(
            "per-epoch activity fractions for --activity-sweep "
            f"(default {list(DEFAULT_ACTIVITIES)})"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "with --activity-sweep: also run the culled scalar oracle and "
            "assert digest equality (implied by --smoke)"
        ),
    )
    parser.add_argument(
        "--city",
        action="store_true",
        help=(
            "benchmark the spatial shard engine on a city-scale deployment "
            f"({CITY_CELLS} APs x {CITY_CELLS * CITY_CLIENTS_PER_AP} UEs) "
            f"across shard counts; writes {CITY_OUTPUT_PATH.name}"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help=f"shard counts for --city (default {list(CITY_SHARDS)})",
    )
    parser.add_argument(
        "--shard-mode",
        choices=("auto", "process", "inline"),
        default="auto",
        help="worker mode for --city / --shard-smoke workers",
    )
    parser.add_argument(
        "--shard-smoke",
        action="store_true",
        help=(
            "CI gate: a 2-shard run under mobility and cross-shard "
            "handover churn must digest-equal the unsharded incremental "
            f"backend; writes {SHARD_SMOKE_OUTPUT_PATH.name}"
        ),
    )
    parser.add_argument(
        "--chaos-smoke",
        action="store_true",
        help=(
            "CI gate: a supervised 2-shard run with a scheduled worker "
            "kill must recover bit-identically, and a zero-retry-budget "
            "kill must degrade inline with a warning; writes "
            f"{CHAOS_SMOKE_OUTPUT_PATH.name}"
        ),
    )
    parser.add_argument(
        "--gain-fill",
        action="store_true",
        help=(
            "benchmark batched gain-fill kernels against the scalar "
            "oracle on full cache builds (matrices must hash identical); "
            f"writes {GAINFILL_OUTPUT_PATH.name} "
            f"({GAINFILL_SMOKE_OUTPUT_PATH.name} with --smoke)"
        ),
    )
    parser.add_argument(
        "--obs-shard-smoke",
        action="store_true",
        help=(
            "CI gate: a traced supervised 2-shard run with a scheduled "
            "worker kill must digest-equal its untraced twin and merge "
            "every worker's telemetry into one shard-tagged timeline; "
            f"writes {OBS_SHARD_SMOKE_OUTPUT_PATH.name} plus "
            f"{OBS_SHARD_TRACE_PATH.name} / {OBS_SHARD_JSONL_PATH.name}"
        ),
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help=f"result file (default {OUTPUT_PATH} / {INCREMENTAL_OUTPUT_PATH})",
    )
    args = parser.parse_args()
    if args.gain_fill:
        payload = run_gainfill_bench(smoke=args.smoke)
        # Like the other smokes, the CI-sized run must not clobber the
        # full-scale performance record.
        output = args.output or (
            GAINFILL_SMOKE_OUTPUT_PATH if args.smoke else GAINFILL_OUTPUT_PATH
        )
    elif args.obs_shard_smoke:
        payload = run_obs_shard_smoke(
            n_epochs=args.epochs or 6, mode=args.shard_mode
        )
        output = args.output or OBS_SHARD_SMOKE_OUTPUT_PATH
    elif args.chaos_smoke:
        payload = run_chaos_smoke(
            n_epochs=args.epochs or 6, mode=args.shard_mode
        )
        output = args.output or CHAOS_SMOKE_OUTPUT_PATH
    elif args.shard_smoke:
        payload = run_shard_smoke(
            n_epochs=args.epochs or 6, mode=args.shard_mode
        )
        output = args.output or SHARD_SMOKE_OUTPUT_PATH
    elif args.city:
        n_cells = (
            args.sizes[0]
            if args.sizes
            else (100 if args.smoke else CITY_CELLS)
        )
        n_epochs = args.epochs or (3 if args.smoke else 5)
        payload = run_city_bench(
            args.shards or list(CITY_SHARDS),
            n_epochs,
            n_cells=n_cells,
            mode=args.shard_mode,
        )
        output = args.output or (
            (REPO_ROOT / "BENCH_city_smoke.json")
            if args.smoke
            else CITY_OUTPUT_PATH
        )
    elif args.activity_sweep:
        if args.smoke:
            n_cells = SMOKE_SWEEP_CELLS
            n_epochs = args.epochs or 3
            activities = args.activities or [0.10, 0.50]
        else:
            n_cells = args.sizes[0] if args.sizes else SWEEP_CELLS
            n_epochs = args.epochs or 5
            activities = args.activities or list(DEFAULT_ACTIVITIES)
        payload = run_activity_sweep(
            n_cells, activities, n_epochs, check=args.check or args.smoke
        )
        # Smoke mode is a correctness gate, not a performance record: keep
        # it from clobbering the full-scale BENCH_incremental.json.
        if args.smoke:
            output = args.output or (
                REPO_ROOT / "BENCH_incremental_smoke.json"
            )
        else:
            output = args.output or INCREMENTAL_OUTPUT_PATH
    else:
        if args.smoke:
            sizes = args.sizes or [10, 20]
            n_epochs = args.epochs or 2
        else:
            sizes = args.sizes or list(DEFAULT_SIZES)
            n_epochs = args.epochs or 5
        payload = run_benchmark(sizes, n_epochs, args.max_scalar_cells)
        output = args.output or OUTPUT_PATH
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
