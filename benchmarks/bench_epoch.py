#!/usr/bin/env python
"""Benchmark the LTE epoch hot path: scalar vs vectorized backend.

Times ``LteNetworkSimulator.run_epoch`` under saturated demand on seeded
random deployments at several cell counts, and writes the measurements to
``BENCH_epoch.json`` at the repository root.

The scalar (reference) backend is quadratic in cells per subchannel and
becomes very slow past ~50 cells, so by default it is only timed up to
``--max-scalar-cells`` (50); larger sizes record the vectorized backend
alone.  Both backends are bit-identical for the same seeds
(``tests/test_lte_network_vectorized.py``), so the speedup is free.

Usage::

    PYTHONPATH=src python benchmarks/bench_epoch.py            # full run
    PYTHONPATH=src python benchmarks/bench_epoch.py --smoke    # quick CI run
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List

import numpy as np

from repro.lte.network import (
    BACKEND_SCALAR,
    BACKEND_VECTORIZED,
    AllSubchannelsPolicy,
    LteNetworkSimulator,
)
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_epoch.json"

DEFAULT_SIZES = (10, 50, 200)
CLIENTS_PER_AP = 6
SEED = 2017


def build_network(n_cells: int, backend: str) -> LteNetworkSimulator:
    """A seeded deployment identical across backends."""
    rng = np.random.default_rng(SEED)
    topology = random_topology(
        rng,
        n_aps=n_cells,
        clients_per_ap=CLIENTS_PER_AP,
        area_m=2000.0,
        client_range_m=600.0,
    )
    channel = CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(sigma_db=7.0, seed=SEED)
    )
    topology = reassociate_strongest(topology, channel.loss_db)
    return LteNetworkSimulator(
        topology=topology,
        grid=ResourceGrid(5e6),
        channel=channel,
        rngs=RngStreams(SEED),
        backend=backend,
    )


def time_epochs(net: LteNetworkSimulator, n_epochs: int) -> Dict[str, float]:
    """Wall-clock seconds for the epoch loop (setup excluded)."""
    grid = net.grid
    policy = AllSubchannelsPolicy(
        [ap.ap_id for ap in net.topology.aps], grid.n_subchannels
    )
    demands = {c.client_id: float("inf") for c in net.topology.clients}
    # One untimed warm-up epoch (fills gain cache and rate tables).
    allowed = policy.decide(0, None)
    observations = net.run_epoch(0, allowed, demands).observations
    start = time.perf_counter()
    for epoch in range(1, n_epochs + 1):
        allowed = policy.decide(epoch, observations)
        observations = net.run_epoch(epoch, allowed, demands).observations
    elapsed = time.perf_counter() - start
    return {
        "total_s": elapsed,
        "per_epoch_s": elapsed / n_epochs,
        "epochs": n_epochs,
    }


def run_benchmark(
    sizes: List[int], n_epochs: int, max_scalar_cells: int
) -> Dict:
    results = []
    for n_cells in sizes:
        entry: Dict = {"cells": n_cells, "clients": n_cells * CLIENTS_PER_AP}
        net = build_network(n_cells, BACKEND_VECTORIZED)
        entry["vectorized"] = time_epochs(net, n_epochs)
        print(
            f"{n_cells:4d} cells  vectorized  "
            f"{entry['vectorized']['per_epoch_s'] * 1e3:9.1f} ms/epoch"
        )
        if n_cells <= max_scalar_cells:
            net = build_network(n_cells, BACKEND_SCALAR)
            entry["scalar"] = time_epochs(net, n_epochs)
            entry["speedup"] = (
                entry["scalar"]["per_epoch_s"]
                / entry["vectorized"]["per_epoch_s"]
            )
            print(
                f"{n_cells:4d} cells  scalar      "
                f"{entry['scalar']['per_epoch_s'] * 1e3:9.1f} ms/epoch  "
                f"(speedup {entry['speedup']:.1f}x)"
            )
        else:
            entry["scalar"] = None
            entry["note"] = (
                f"scalar backend skipped above {max_scalar_cells} cells "
                "(reference implementation is too slow; it is bit-identical "
                "to the vectorized backend)"
            )
        results.append(entry)
    return {
        "benchmark": "lte-epoch-backends",
        "seed": SEED,
        "clients_per_ap": CLIENTS_PER_AP,
        "epochs_timed": n_epochs,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode: small sizes and few epochs (CI / make bench)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"cell counts to benchmark (default {list(DEFAULT_SIZES)})",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="epochs to time per run"
    )
    parser.add_argument(
        "--max-scalar-cells",
        type=int,
        default=50,
        help="largest size at which the scalar backend is also timed",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=OUTPUT_PATH,
        help=f"result file (default {OUTPUT_PATH})",
    )
    args = parser.parse_args()
    if args.smoke:
        sizes = args.sizes or [10, 20]
        n_epochs = args.epochs or 2
    else:
        sizes = args.sizes or list(DEFAULT_SIZES)
        n_epochs = args.epochs or 5
    payload = run_benchmark(sizes, n_epochs, args.max_scalar_cells)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
