"""Uplink protection: CellFi's TDD allocations shield the uplink too.

Extension of paper Section 5 ("the uplink can be managed similarly"):
after the downlink algorithms converge, the uplink is evaluated under the
same allocations.  CellFi's disentangled holdings must give the uplink a
better SINR distribution than plain LTE's everyone-everywhere.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.uplink_exp import run_uplink_comparison
from repro.utils.render import format_table


def test_uplink_protection(benchmark, report):
    n_aps = 10 if full_scale() else 8
    epochs = 14 if full_scale() else 10
    result = once(benchmark, run_uplink_comparison, n_aps=n_aps, epochs=epochs)

    lte_sinr = result.median_sinr_db("LTE")
    cellfi_sinr = result.median_sinr_db("CellFi")
    assert cellfi_sinr >= lte_sinr, "CellFi's allocations must protect UL"

    # The low tail is where uncoordinated uplink hurts most.
    lte_p10 = float(np.percentile(result.sinr_db["LTE"], 10))
    cellfi_p10 = float(np.percentile(result.sinr_db["CellFi"], 10))
    assert cellfi_p10 >= lte_p10

    rows = []
    for tech in ("LTE", "CellFi"):
        sinr = result.sinr_db[tech]
        rows.append(
            [
                tech,
                f"{np.percentile(sinr, 10):.1f} dB",
                f"{np.median(sinr):.1f} dB",
                f"{result.median_bps(tech) / 1e3:.0f} kb/s",
            ]
        )
    report(
        "uplink",
        format_table(
            ["tech", "UL SINR p10", "UL SINR median", "UL median rate"],
            rows,
            title="Uplink protection under converged DL allocations",
        ),
    )
