"""Figure 8 / Section 6.3.2: the CQI interference detector.

Paper measurements on the testbed trace: < 2% false positives, 80% correct
detection under strong interference, no triggering on faded interference.
"""

import numpy as np
from conftest import once

from repro.experiments.cqi_detector import run_fig8
from repro.utils.render import ascii_plot, format_table


def test_fig8_cqi_detector(benchmark, report):
    result = once(benchmark, run_fig8)

    assert result.false_positive_rate < 0.02, "paper: < 2% false positives"
    assert 0.6 <= result.true_positive_rate <= 0.95, "paper: ~80% detection"
    assert result.faded_flag_rate < 0.05, "faded interference must not trigger"

    # Throughput visibly collapses during strong interference.
    on = [t for t, s in zip(result.throughput_mbps, result.interferer_on) if s]
    off = [t for t, s in zip(result.throughput_mbps, result.interferer_on) if not s]
    assert np.mean(on) < 0.6 * np.mean(off)

    rows = [
        ["false positives", "< 2%", f"{result.false_positive_rate * 100:.2f}%"],
        ["true positives (strong)", "~80%", f"{result.true_positive_rate * 100:.0f}%"],
        ["flags on faded interferer", "~0", f"{result.faded_flag_rate * 100:.2f}%"],
        ["throughput drop when ON", "~2x", f"{np.mean(off) / max(np.mean(on), 0.01):.1f}x"],
    ]
    table = format_table(["metric", "paper", "measured"], rows, title="Figure 8")
    # Downsample the trace for the plot.
    pts = list(zip(result.times_s, result.throughput_mbps))[::10]
    trace = ascii_plot(pts, x_label="time [s]", y_label="throughput [Mb/s]")
    report("fig8", table + "\n\ntrace (interferer OFF/ON/OFF/ON-faded):\n" + trace)
