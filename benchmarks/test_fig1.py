"""Figure 1: throughput vs distance, coding-rate CDFs, channel occupancy.

Paper findings reproduced in shape:
  (a) >= 1 Mb/s at >= 85% of locations, usable range beyond 1.3 km;
  (b) median downlink coding rate ~ 1/2 with a tail well below Wi-Fi's floor;
  (c) uplink (TCP ACKs) occupies a single RB; ~25% HARQ beyond 500 m.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.coverage import run_drive_test
from repro.utils.render import ascii_plot, format_table
from repro.utils.stats import Cdf


def test_fig1_drive_test(benchmark, report):
    samples = 120 if full_scale() else 50
    result = once(benchmark, run_drive_test, samples_per_point=samples)

    coverage = result.coverage_fraction(1.0)
    max_range = result.max_range_m(1.0)
    dl_rates = result.all_code_rates("downlink")
    ul_rates = result.all_code_rates("uplink")
    harq = result.harq_usage_beyond(500.0)

    # Paper-shape assertions.
    assert coverage >= 0.85, "paper: 1 Mb/s at >= 85% of locations"
    assert max_range >= 1300.0, "paper: range reaches 1.3 km"
    assert 0.35 <= float(np.median(dl_rates)) <= 0.65, "paper: median rate ~ 1/2"
    assert min(dl_rates) < 0.2, "paper: LTE uses rates far below Wi-Fi's 1/2"
    assert 0.05 <= harq <= 0.45, "paper: ~25% HARQ beyond 500 m"
    assert max(result.channel_fractions("uplink")) <= 0.1, "UL rides one RB"

    rows = [
        ["coverage >= 1 Mb/s", ">= 85%", f"{coverage * 100:.1f}%"],
        ["range at 1 Mb/s", "~1.3 km", f"{max_range / 1000:.2f} km"],
        ["median DL code rate", "~0.5", f"{np.median(dl_rates):.2f}"],
        ["median UL code rate", "~0.5", f"{np.median(ul_rates):.2f}"],
        ["HARQ use beyond 500 m", "~25%", f"{harq * 100:.1f}%"],
        ["UL channel fraction", "1 RB (~0.04)", f"{np.median(result.channel_fractions('uplink')):.3f}"],
    ]
    table = format_table(["metric", "paper", "measured"], rows, title="Figure 1")
    plot = ascii_plot(
        result.throughput_curve(), x_label="distance [m]", y_label="TCP [Mb/s]"
    )
    report("fig1", table + "\n\n" + plot)
