PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test coverage checkpoint-smoke bench bench-full bench-obs bench-incremental bench-incremental-smoke bench-city bench-gainfill bench-gainfill-smoke shard-smoke chaos-smoke sweep-smoke faults-smoke trace-smoke obs-shard-smoke

# CPU-feature mask under which numpy's transcendental inner loops fall
# back to their libm-calling baseline, which is bit-identical to the
# math module -- so the exactness probes in repro.phy.vecmath resolve to
# the vector paths.  The gain-fill benchmarks run under it; correctness
# never depends on it (unprobed hosts fall back to scalar loops with the
# same bits).  See docs/SIMULATION.md ("gain-fill kernels").
LIBM_MODE_FEATURES := AVX512_SPR AVX512_ICL AVX512_CNL AVX512_CLX AVX512_SKX AVX512F AVX512CD AVX512VL AVX512BW AVX512DQ AVX512VNNI AVX512IFMA AVX512VBMI AVX512VBMI2 AVX512BITALG AVX512FP16 AVX512BF16 AVX512VPOPCNTDQ X86_V4 AVX2 FMA3 F16C X86_V3 AVX

# Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 suite under coverage: terminal summary plus coverage.xml (the CI
# artifact).  Gated on pytest-cov so machines without the plugin still get
# a meaningful (plain) run instead of a usage error.
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q --cov=repro --cov-report=term --cov-report=xml; \
	else \
		echo "pytest-cov not installed; running the plain suite instead"; \
		$(PYTHON) -m pytest -q; \
	fi

# Checkpoint/restore smoke: halt a checkpointed outage run mid-flight,
# resume from the newest snapshot, and require the resumed run digest to
# be byte-identical to the same scenario run straight through.  Then the
# divergence replayer must pinpoint a deliberately injected mutation.
checkpoint-smoke:
	rm -rf ckpt-smoke ckpt-resumed.txt ckpt-straight.txt
	$(PYTHON) -m repro.cli db-outage --seed 3 --timeout-prob 0.05 \
		--drop-prob 0.05 --checkpoint-dir ckpt-smoke \
		--checkpoint-every 60 --halt-at 250
	$(PYTHON) -m repro.cli db-outage \
		--restore-from "$$(ls ckpt-smoke/ckpt_*.json | sort | tail -n 1)" \
		| grep "run digest" | tee ckpt-resumed.txt
	$(PYTHON) -m repro.cli db-outage --seed 3 --timeout-prob 0.05 \
		--drop-prob 0.05 | grep "run digest" | tee ckpt-straight.txt
	cmp ckpt-resumed.txt ckpt-straight.txt
	$(PYTHON) -m repro.cli replay-diff \
		"$$(ls ckpt-smoke/ckpt_*.json | sort | head -n 1)" \
		--mutate selector.poll_interval_s=9.0 --max-events 5000

# 2-cell sweep through the multiprocessing runner (the CI smoke test).
sweep-smoke:
	$(PYTHON) -m repro.cli sweep fig9a --densities 4 --seeds 1 \
		--techs LTE CellFi --clients-per-ap 3 --epochs 3 \
		--jobs 2 --retries 1 --timeout 300

# Deterministic database-outage scenario through the faulty transport:
# one outage grace mode absorbs, one that forces a vacate.  Exit status
# is 0 iff the run stayed ETSI-compliant (see docs/ROBUSTNESS.md).
faults-smoke:
	$(PYTHON) -m repro.cli db-outage --seed 1 --outages 60:30 240:90 \
		--timeout-prob 0.2 --drop-prob 0.1 --error-prob 0.05 \
		--malformed-prob 0.02 --spike-prob 0.05

# Short traced fig9a cell; validates both trace exports against the
# trace_event schema (see docs/OBSERVABILITY.md).
trace-smoke:
	$(PYTHON) -m repro.cli fig9a --densities 4 --seeds 1 --epochs 3 \
		--trace trace-smoke.json --trace-jsonl trace-smoke.jsonl \
		--metrics-out trace-smoke-metrics.json --profile
	$(PYTHON) -m repro.obs.validate trace-smoke.json trace-smoke.jsonl

# Quick epoch benchmark (small sizes, few epochs) -- suitable for CI.
bench:
	$(PYTHON) benchmarks/bench_epoch.py --smoke

# Full epoch benchmark: 10/50/200 cells, writes BENCH_epoch.json.
bench-full:
	$(PYTHON) benchmarks/bench_epoch.py

# Telemetry overhead benchmark: asserts the disabled-telemetry epoch
# stays within 3% of the BENCH_epoch.json reference; writes BENCH_obs.json.
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py

# Activity sweep: incremental vs dense vectorized backend at 200 cells;
# writes BENCH_incremental.json.
bench-incremental:
	$(PYTHON) benchmarks/bench_epoch.py --activity-sweep --epochs 10

# CI-sized activity sweep (20 cells) with the scalar oracle in the loop:
# fails if the incremental digests diverge from the scalar digests or the
# dirty counters exceed the number of moved cells.
bench-incremental-smoke:
	$(PYTHON) benchmarks/bench_epoch.py --activity-sweep --smoke

# City-scale shard sweep: 1000 APs x 10000 UEs across 1/2/4 worker
# shards with cross-arm digest equality enforced; writes BENCH_city.json.
bench-city:
	$(PYTHON) benchmarks/bench_epoch.py --city

# Gain-fill kernel benchmark: full cache builds, batched kernels vs the
# scalar oracle, matrices required to hash identical; the city point
# (1000 APs x 10000 UEs) carries the >=10x acceptance target.  Writes
# BENCH_gainfill.json.
bench-gainfill:
	NPY_DISABLE_CPU_FEATURES="$(LIBM_MODE_FEATURES)" \
		$(PYTHON) benchmarks/bench_epoch.py --gain-fill

# CI-sized gain-fill gate: the smoke population with the same
# batched-vs-scalar digest check, then an obs-report timing diff of the
# fresh run against the committed BENCH_gainfill_smoke.json.  The 2.0
# tolerance absorbs host noise at smoke scale while still failing loudly
# if a kernel silently degrades to its scalar fallback (>=5x slower).
bench-gainfill-smoke:
	NPY_DISABLE_CPU_FEATURES="$(LIBM_MODE_FEATURES)" \
		$(PYTHON) benchmarks/bench_epoch.py --gain-fill --smoke \
		--output bench-gainfill-current.json
	$(PYTHON) -m repro.cli obs-report \
		--bench BENCH_gainfill_smoke.json bench-gainfill-current.json \
		--tolerance 2.0

# CI-sized shard gate: a 2-shard process-mode run under mobility and
# cross-shard handover churn must digest-equal the unsharded incremental
# backend; writes BENCH_shard_smoke.json.
shard-smoke:
	$(PYTHON) benchmarks/bench_epoch.py --shard-smoke

# Chaos gate: a supervised 2-shard process-mode run with a scheduled
# worker kill must respawn from checkpoint, replay its journal, and stay
# digest-equal to the fault-free run; a zero-retry-budget kill must
# degrade the shard to inline execution with a structured warning.
# Writes BENCH_chaos_smoke.json (see docs/ROBUSTNESS.md).
chaos-smoke:
	$(PYTHON) benchmarks/bench_epoch.py --chaos-smoke

# Cross-shard telemetry gate: a traced supervised 2-shard run with a
# scheduled worker kill must digest-equal its untraced twin and merge
# every worker's telemetry (plus supervisor barrier/recovery spans) into
# one shard-tagged timeline; the merged exports must validate against
# the trace_event schema, and obs-report must run its barrier/straggler
# analytics plus a BENCH_obs.json regression diff cleanly
# (see docs/OBSERVABILITY.md).
obs-shard-smoke:
	$(PYTHON) benchmarks/bench_epoch.py --obs-shard-smoke --shard-mode process
	$(PYTHON) -m repro.obs.validate obs-shard-smoke-trace.json obs-shard-smoke.jsonl
	$(PYTHON) -m repro.cli obs-report --trace-jsonl obs-shard-smoke.jsonl \
		--bench BENCH_obs.json BENCH_obs.json --tolerance 1.03
