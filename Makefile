PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-full sweep-smoke

# Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q

# 2-cell sweep through the multiprocessing runner (the CI smoke test).
sweep-smoke:
	$(PYTHON) -m repro.cli sweep fig9a --densities 4 --seeds 1 \
		--techs LTE CellFi --clients-per-ap 3 --epochs 3 \
		--jobs 2 --retries 1 --timeout 300

# Quick epoch benchmark (small sizes, few epochs) -- suitable for CI.
bench:
	$(PYTHON) benchmarks/bench_epoch.py --smoke

# Full epoch benchmark: 10/50/200 cells, writes BENCH_epoch.json.
bench-full:
	$(PYTHON) benchmarks/bench_epoch.py
