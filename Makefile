PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-full

# Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q

# Quick epoch benchmark (small sizes, few epochs) -- suitable for CI.
bench:
	$(PYTHON) benchmarks/bench_epoch.py --smoke

# Full epoch benchmark: 10/50/200 cells, writes BENCH_epoch.json.
bench-full:
	$(PYTHON) benchmarks/bench_epoch.py
