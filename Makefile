PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-full bench-obs sweep-smoke faults-smoke trace-smoke

# Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q

# 2-cell sweep through the multiprocessing runner (the CI smoke test).
sweep-smoke:
	$(PYTHON) -m repro.cli sweep fig9a --densities 4 --seeds 1 \
		--techs LTE CellFi --clients-per-ap 3 --epochs 3 \
		--jobs 2 --retries 1 --timeout 300

# Deterministic database-outage scenario through the faulty transport:
# one outage grace mode absorbs, one that forces a vacate.  Exit status
# is 0 iff the run stayed ETSI-compliant (see docs/ROBUSTNESS.md).
faults-smoke:
	$(PYTHON) -m repro.cli db-outage --seed 1 --outages 60:30 240:90 \
		--timeout-prob 0.2 --drop-prob 0.1 --error-prob 0.05 \
		--malformed-prob 0.02 --spike-prob 0.05

# Short traced fig9a cell; validates both trace exports against the
# trace_event schema (see docs/OBSERVABILITY.md).
trace-smoke:
	$(PYTHON) -m repro.cli fig9a --densities 4 --seeds 1 --epochs 3 \
		--trace trace-smoke.json --trace-jsonl trace-smoke.jsonl \
		--metrics-out trace-smoke-metrics.json --profile
	$(PYTHON) -m repro.obs.validate trace-smoke.json trace-smoke.jsonl

# Quick epoch benchmark (small sizes, few epochs) -- suitable for CI.
bench:
	$(PYTHON) benchmarks/bench_epoch.py --smoke

# Full epoch benchmark: 10/50/200 cells, writes BENCH_epoch.json.
bench-full:
	$(PYTHON) benchmarks/bench_epoch.py

# Telemetry overhead benchmark: asserts the disabled-telemetry epoch
# stays within 3% of the BENCH_epoch.json reference; writes BENCH_obs.json.
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py
