#!/usr/bin/env python3
"""Roaming: a commuter walks across three CellFi cells without dropping.

Paper Section 7: "CellFi inherits the benefits of the LTE architecture.
It provides seamless roaming across access points, which is difficult to
engineer in current WiFi deployments."

One fast-moving client crosses a three-cell corridor while five static
clients per cell keep the network loaded.  The demo prints the commuter's
serving cell, RSRP and throughput per epoch, the A3 handovers that fire,
and the fraction of epochs with service.

Run:  python examples/roaming_demo.py
"""

import numpy as np

from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.handover import HandoverController, MobileNetworkRunner
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.mobility import RandomWaypointModel
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology

COMMUTER = 0
EPOCHS = 60


class _CorridorWalk(RandomWaypointModel):
    """Waypoint model that pins the commuter to an east-bound corridor."""

    def __init__(self, area_m, rng, commuter_speed=25.0):
        super().__init__(area_m, rng, speed_range_m_s=(0.1, 0.3),
                         pause_range_s=(5.0, 20.0))
        self._commuter_speed = commuter_speed

    def step(self, dt_s):
        positions = super().step(dt_s)
        # Override the commuter: straight line west -> east at speed.
        x, y = positions.get(COMMUTER, (0.0, 400.0))
        positions[COMMUTER] = (min(x + self._commuter_speed * dt_s, self.area_m), 400.0)
        walker = self._walkers[COMMUTER]
        walker.x, walker.y = positions[COMMUTER]
        return positions


def build_topology() -> Topology:
    spacing = 600.0
    aps = [AccessPointSite(i, 150.0 + i * spacing, 400.0) for i in range(3)]
    clients = [ClientSite(COMMUTER, 0.0, 400.0, ap_id=0)]
    cid = 1
    for ap in aps:
        for k in range(5):
            angle = 2 * np.pi * k / 5
            clients.append(
                ClientSite(cid, ap.x + 150 * np.cos(angle),
                           ap.y + 150 * np.sin(angle), ap_id=ap.ap_id)
            )
            cid += 1
    return Topology(area_m=2 * spacing + 400.0, aps=aps, clients=clients)


def main() -> None:
    rngs = RngStreams(51)
    topology = build_topology()
    mobility = _CorridorWalk(topology.area_m, rngs.stream("walk"))
    runner = MobileNetworkRunner(
        topology,
        ResourceGrid(5e6),
        CompositeChannel(UrbanHataPathLoss()),
        rngs.fork("net"),
        mobility,
        controller=HandoverController(hysteresis_db=3.0, time_to_trigger_epochs=2),
    )
    manager = CellFiInterferenceManager([0, 1, 2], 13, rngs.fork("mgr"))
    demands = {c.client_id: float("inf") for c in topology.clients}

    print("epoch | position | serving | commuter rate | handover")
    print("-" * 60)
    served_epochs = 0
    handovers_seen = 0
    handover_log = []
    for epoch in range(EPOCHS):
        batch = runner.run(1, manager, lambda e: demands)
        result = batch[0]
        client = runner.topology.client(COMMUTER)
        rate = result.throughput_bps[COMMUTER]
        served_epochs += rate > 0.0
        new_handovers = runner.handovers[handovers_seen:]
        handovers_seen = len(runner.handovers)
        commuter_ho = [h for h in new_handovers if h.client_id == COMMUTER]
        handover_log.extend((epoch, h.source_ap, h.target_ap) for h in commuter_ho)
        marker = ", ".join(f"{h.source_ap}->{h.target_ap}" for h in commuter_ho)
        if epoch % 4 == 0 or commuter_ho:
            print(f"{epoch:5d} | {client.x:6.0f} m | cell {client.ap_id}  | "
                  f"{rate / 1e3:7.0f} kb/s | {marker}")

    print(f"\nCommuter handovers (epoch, from, to): {handover_log}")
    print(f"Epochs with service: {served_epochs}/{EPOCHS} "
          f"({100 * served_epochs / EPOCHS:.0f}%)")


if __name__ == "__main__":
    main()
