#!/usr/bin/env python3
"""Quickstart: a CellFi network in ~40 lines.

Builds a random 6-cell deployment in a 2 km x 2 km area, runs CellFi's
decentralized interference management for 10 one-second epochs, and prints
per-client throughput plus each AP's converged subchannel holdings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest
from repro.utils.render import format_table


def main() -> None:
    rngs = RngStreams(42)

    # Substrate: urban propagation, a 5 MHz TDD carrier (13 subchannels),
    # six APs with six clients each.
    channel = CompositeChannel(UrbanHataPathLoss(), LogNormalShadowing(7.0, seed=42))
    topology = random_topology(
        rngs.stream("topology"), n_aps=6, clients_per_ap=6, client_range_m=800.0
    )
    topology = reassociate_strongest(topology, channel.loss_db)
    grid = ResourceGrid(5e6)

    # The system simulator plus CellFi's interference manager.
    net = LteNetworkSimulator(topology, grid, channel, rngs.fork("net"))
    manager = CellFiInterferenceManager(
        [ap.ap_id for ap in topology.aps], grid.n_subchannels, rngs.fork("manager")
    )

    # Saturated downlink for 10 epochs.
    demands = {c.client_id: float("inf") for c in topology.clients}
    results = net.run(10, manager, lambda epoch: demands)

    # Report: steady-state throughput per client.
    tail = results[5:]
    rows = []
    for client in topology.clients:
        throughput = np.mean([r.throughput_bps[client.client_id] for r in tail])
        rows.append([client.client_id, client.ap_id, f"{throughput / 1e3:.0f} kb/s"])
    print(format_table(["client", "AP", "throughput"], rows, title="CellFi quickstart"))

    print("\nConverged subchannel holdings per AP:")
    for ap_id, holdings in sorted(manager.holdings().items()):
        print(f"  AP {ap_id}: {sorted(holdings)}")
    print(f"\nTotal hops: {manager.stats.total_hops}, "
          f"re-use packing moves: {manager.stats.total_reuse_moves}")


if __name__ == "__main__":
    main()
