#!/usr/bin/env python3
"""Watch CellFi's interference management converge, epoch by epoch.

Prints a per-epoch trace of the distributed algorithm on a three-cell
chain: the PRACH-based contention estimates (NP_i), the computed shares
(S_i = N_i * S / NP_i), each AP's subchannel holdings as a bitmap, the
hops triggered by drained buckets, and coverage.  The chain topology
(A -- B -- C, where A and C do not interfere) also shows spatial reuse:
A and C converge onto overlapping subchannels while B stays disjoint
from both.

Run:  python examples/algorithm_trace.py
"""

import numpy as np

from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology

N_SUBCHANNELS = 13
EPOCHS = 12


def chain_topology() -> Topology:
    """Three cells in a line; only adjacent cells interfere.

    Each cell keeps one close client and puts the rest toward its
    neighbours, so adjacent cells overhear each other's PRACH (shares
    split) and cell-edge clients genuinely suffer from overlap (buckets
    drain, hops happen).
    """
    spacing = 450.0
    aps = [AccessPointSite(i, i * spacing, 0.0) for i in range(3)]
    clients = []
    cid = 0
    for ap in aps:
        offsets = [(60.0, 40.0)]
        if ap.ap_id > 0:
            offsets.append((-0.44 * spacing, 20.0))   # Toward the left cell.
        if ap.ap_id < 2:
            offsets.append((0.44 * spacing, -20.0))   # Toward the right cell.
        for dx, dy in offsets:
            clients.append(ClientSite(cid, ap.x + dx, ap.y + dy, ap_id=ap.ap_id))
            cid += 1
    return Topology(area_m=2 * spacing + 400.0, aps=aps, clients=clients)


def bitmap(holdings) -> str:
    """Render a subchannel set as '#.#..' over the carrier."""
    return "".join("#" if k in holdings else "." for k in range(N_SUBCHANNELS))


def main() -> None:
    rngs = RngStreams(31)
    topology = chain_topology()
    net = LteNetworkSimulator(
        topology, ResourceGrid(5e6), CompositeChannel(UrbanHataPathLoss()),
        rngs.fork("net"),
    )
    manager = CellFiInterferenceManager(
        [0, 1, 2], N_SUBCHANNELS, rngs.fork("mgr")
    )
    demands = {c.client_id: float("inf") for c in topology.clients}

    print("epoch | AP0 holdings  | AP1 holdings  | AP2 holdings  | "
          "shares    | NP est    | hops | connected")
    print("-" * 110)
    observations = None
    previous_hops = 0
    for epoch in range(EPOCHS):
        allowed = manager.decide(epoch, observations)
        result = net.run_epoch(epoch, allowed, demands)
        observations = result.observations

        shares = [manager.stats.last_shares.get(ap, "-") for ap in (0, 1, 2)]
        contention = [observations[ap].estimated_contenders for ap in (0, 1, 2)]
        hops = manager.stats.total_hops - previous_hops
        previous_hops = manager.stats.total_hops
        connected = np.mean(list(result.connected.values()))
        print(
            f"{epoch:5d} | {bitmap(allowed[0])} | {bitmap(allowed[1])} | "
            f"{bitmap(allowed[2])} | {str(shares):9s} | {str(contention):9s} | "
            f"{hops:4d} | {connected * 100:5.1f}%"
        )

    holdings = manager.holdings()
    reuse_ac = len(holdings[0] & holdings[2])
    overlap_ab = len(holdings[0] & holdings[1])
    overlap_bc = len(holdings[1] & holdings[2])
    print(f"\nSpatial reuse A&C (non-interfering): {reuse_ac} shared subchannels")
    print(f"Conflict overlap A&B: {overlap_ab}, B&C: {overlap_bc}")
    print(f"Total hops: {manager.stats.total_hops}, "
          f"packing moves: {manager.stats.total_reuse_moves}")


if __name__ == "__main__":
    main()
