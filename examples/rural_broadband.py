#!/usr/bin/env python3
"""The paper's motivating deployment: broadband for under-served users.

"A CellFi access point has currently been operational for several months
serving more than 10 users with no broadband connection ... the network
range is around 1 km and all users experience rates above 1 Mbps."

This example stands up exactly that: one CellFi AP with a TVWS database
lease, ten households spread out to 1 km, and verifies the two service
requirements from paper Section 2 -- >= 1 km coverage, >= 1 Mb/s per user
-- while the ETSI compliance monitor watches every transmission.

Run:  python examples/rural_broadband.py
"""

import math

import numpy as np

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.network import AllSubchannelsPolicy, LteNetworkSimulator
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import ConnectionState, UserEquipment
from repro.phy.propagation import CompositeChannel, LogNormalShadowing, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules
from repro.utils.render import format_table

N_HOUSEHOLDS = 10


def main() -> None:
    # --- Control plane: spectrum database, PAWS, compliance, one AP. -----
    sim = Simulator()
    database = SpectrumDatabase(US_CHANNEL_PLAN)
    paws = PawsServer(database)
    compliance = EtsiComplianceRules()
    ap = CellFiAccessPoint(
        sim=sim,
        paws=paws,
        x=0.0,
        y=0.0,
        serial="village-ap",
        compliance=compliance,
        timing=ReacquisitionTiming(),
    )

    class _Home:
        def __init__(self, x, y):
            self.x, self.y = x, y

    households = []
    for i in range(N_HOUSEHOLDS):
        radius = 150.0 + 850.0 * i / (N_HOUSEHOLDS - 1)
        angle = 2.0 * math.pi * i / N_HOUSEHOLDS
        ue = UserEquipment(
            ue_id=i, node=_Home(radius * math.cos(angle), radius * math.sin(angle))
        )
        households.append(ue)
        ap.register_client(ue)

    ap.start()
    sim.run(until=200.0)  # Through DB query, reboot and cell search.

    print(f"Channel from database: {ap.selector.current_channel} "
          f"(lease expires t={ap.selector.current_spec.expires_at:.0f}s)")
    print(f"Clients connected: {ap.connected_clients}/{N_HOUSEHOLDS}")
    assert all(ue.state is ConnectionState.CONNECTED for ue in households)

    # --- Data plane: per-household rate over the shared 5 MHz carrier. ----
    rngs = RngStreams(7)
    channel = CompositeChannel(UrbanHataPathLoss(), LogNormalShadowing(3.0, seed=7))
    topology = Topology(
        area_m=2200.0,
        aps=[AccessPointSite(0, 1100.0, 1100.0)],
        clients=[
            ClientSite(ue.ue_id, 1100.0 + ue.node.x, 1100.0 + ue.node.y, ap_id=0)
            for ue in households
        ],
    )
    net = LteNetworkSimulator(topology, ResourceGrid(5e6), channel, rngs)
    policy = AllSubchannelsPolicy([0], net.grid.n_subchannels)
    demands = {ue.ue_id: float("inf") for ue in households}
    results = net.run(5, policy, lambda e: demands)

    rows = []
    satisfied = 0
    for ue in households:
        distance = math.hypot(ue.node.x, ue.node.y)
        rate = np.mean([r.throughput_bps[ue.ue_id] for r in results])
        meets = rate >= 1e6 / N_HOUSEHOLDS  # Fair share of a loaded cell...
        # The paper's requirement is 1 Mb/s *available* per user; check the
        # solo rate too (what the user sees off-peak).
        solo = net.run_epoch(99, {0: set(range(13))}, {ue.ue_id: float("inf")})
        solo_rate = solo.throughput_bps[ue.ue_id]
        satisfied += solo_rate >= 1e6
        rows.append(
            [ue.ue_id, f"{distance:.0f} m", f"{rate / 1e3:.0f} kb/s",
             f"{solo_rate / 1e6:.1f} Mb/s"]
        )
    print(format_table(
        ["home", "distance", "busy-hour share", "off-peak rate"],
        rows,
        title="Village broadband service",
    ))
    print(f"\nHomes with >= 1 Mb/s available: {satisfied}/{N_HOUSEHOLDS}")
    print(f"ETSI compliant: {compliance.compliant}")
    assert satisfied == N_HOUSEHOLDS
    assert compliance.compliant


if __name__ == "__main__":
    main()
