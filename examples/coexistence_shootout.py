#!/usr/bin/env python3
"""Technology shoot-out: CellFi vs plain LTE vs 802.11af vs the oracle.

Deploys all four technologies on the *same* random topology (the paper's
methodology) under saturated downlink traffic and prints the Figure 9(b)
style comparison: median throughput, starvation and fairness.

Run:  python examples/coexistence_shootout.py [n_aps]
"""

import sys

import numpy as np

from repro.baselines.oracle import OracleAllocator
from repro.baselines.plain_lte import PlainLtePolicy
from repro.core.interference.manager import CellFiInterferenceManager
from repro.experiments.common import build_scenario
from repro.lte.network import LteNetworkSimulator, STARVATION_THRESHOLD_BPS
from repro.traffic.backlogged import saturated_demand_fn
from repro.utils.render import format_table
from repro.utils.stats import jain_fairness
from repro.wifi.network import STANDARD_80211AF, WifiNetworkSimulator


def run_lte_family(scenario, policy_name, epochs=12):
    net = LteNetworkSimulator(
        scenario.topology, scenario.grid(), scenario.channel,
        scenario.rngs.fork(f"net-{policy_name}"),
    )
    if policy_name == "CellFi":
        policy = CellFiInterferenceManager(
            scenario.ap_ids, net.grid.n_subchannels, scenario.rngs.fork("mgr")
        )
    elif policy_name == "LTE":
        policy = PlainLtePolicy(scenario.ap_ids, net.grid.n_subchannels)
    else:
        policy = OracleAllocator(net, net.grid.n_subchannels)
    results = net.run(epochs, policy, saturated_demand_fn(scenario.topology))
    tail = results[epochs // 2:]
    return [
        float(np.mean([r.throughput_bps[c.client_id] for r in tail]))
        for c in scenario.topology.clients
    ]


def run_wifi(scenario, duration_s=4.0):
    net = WifiNetworkSimulator(
        scenario.topology, scenario.channel, STANDARD_80211AF,
        scenario.rngs.fork("wifi"),
    )
    result = net.run_saturated(duration_s)
    return [result.throughput_bps[c.client_id] for c in scenario.topology.clients]


def main() -> None:
    n_aps = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    scenario = build_scenario(seed=1, n_aps=n_aps, clients_per_ap=6)
    print(f"Topology: {n_aps} APs x 6 clients in 2 km x 2 km, 5 MHz carrier\n")

    samples = {
        "802.11af": run_wifi(scenario),
        "LTE": run_lte_family(scenario, "LTE"),
        "CellFi": run_lte_family(scenario, "CellFi"),
        "Oracle": run_lte_family(scenario, "Oracle"),
    }

    rows = []
    for tech, throughput in samples.items():
        arr = np.array(throughput)
        rows.append(
            [
                tech,
                f"{np.median(arr) / 1e3:.0f} kb/s",
                f"{arr.sum() / 1e6:.1f} Mb/s",
                f"{100 * (arr < STARVATION_THRESHOLD_BPS).mean():.0f}%",
                f"{jain_fairness(list(arr)):.2f}",
            ]
        )
    print(format_table(
        ["tech", "median", "network total", "starved", "Jain fairness"],
        rows,
        title="Saturated-downlink comparison (same topology)",
    ))


if __name__ == "__main__":
    main()
