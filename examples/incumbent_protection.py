#!/usr/bin/env python3
"""Incumbent protection: a wireless microphone interrupts a CellFi cell.

A CellFi AP is serving clients when a wireless microphone (a primary user,
e.g. for a stadium event) registers on the AP's channel.  The AP must
vacate within the ETSI 60-second deadline, move to another channel if one
exists, and return when the event ends.  The ETSI compliance monitor
audits the whole episode.

Run:  python examples/incumbent_protection.py
"""

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import ConnectionState, UserEquipment
from repro.sim.engine import Simulator
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import Incumbent, SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules


class _Node:
    def __init__(self, x, y):
        self.x, self.y = x, y


def main() -> None:
    sim = Simulator()
    database = SpectrumDatabase(US_CHANNEL_PLAN, lease_duration_s=600.0)
    paws = PawsServer(database)
    compliance = EtsiComplianceRules()

    # Keep only two channels in this region so the story is visible.
    for tv in US_CHANNEL_PLAN.channels:
        if tv.number not in (20, 21):
            database.withdraw_channel(tv.number)

    ap = CellFiAccessPoint(
        sim=sim, paws=paws, x=500.0, y=500.0, serial="stadium-ap",
        compliance=compliance,
        timing=ReacquisitionTiming(ap_reboot_s=96.0, cell_search_s=56.0),
    )
    client = UserEquipment(ue_id=0, node=_Node(700.0, 500.0))
    ap.register_client(client)
    ap.start()
    sim.run(until=200.0)
    first_channel = ap.selector.current_channel
    print(f"t={sim.now:5.0f}s  AP on channel {first_channel}, "
          f"client {'connected' if client.state is ConnectionState.CONNECTED else 'searching'}")

    # The microphone registers for a 10-minute event on the AP's channel,
    # starting 60 seconds from now.
    event_start = sim.now + 60.0
    database.register_incumbent(
        Incumbent(
            name="wireless-mic-17",
            channel=first_channel,
            x=600.0, y=500.0,
            protection_radius_m=2000.0,
            active_from=event_start,
            active_until=event_start + 600.0,
        )
    )
    print(f"t={sim.now:5.0f}s  microphone registered for t={event_start:.0f}s")

    sim.run(until=event_start + 10.0)
    print(f"t={sim.now:5.0f}s  event started; AP now on channel "
          f"{ap.selector.current_channel} (radio {'ON' if ap.radio_on else 'off'})")
    assert ap.selector.current_channel != first_channel or not ap.radio_on

    sim.run(until=event_start + 600.0 + 300.0)
    print(f"t={sim.now:5.0f}s  event over; AP on channel "
          f"{ap.selector.current_channel}, "
          f"{ap.connected_clients} client(s) connected")

    print("\nTimeline:")
    for t, kind, detail in ap.selector.timeline():
        print(f"  t={t:7.1f}s  {kind:12s} {detail}")
    print(f"\nETSI compliant throughout: {compliance.compliant}")
    assert compliance.compliant


if __name__ == "__main__":
    main()
