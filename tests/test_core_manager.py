"""Integration tests for the CellFi interference manager."""

import numpy as np
import pytest

from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest

N_SUBS = 13


def _manager(ap_ids=(0, 1), **kwargs):
    return CellFiInterferenceManager(ap_ids, N_SUBS, RngStreams(5), **kwargs)


def _scenario(seed=7, n_aps=5):
    rngs = RngStreams(seed)
    channel = CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(7.0, seed=seed)
    )
    topo = random_topology(
        rngs.stream("topo"), n_aps=n_aps, clients_per_ap=4, client_range_m=800.0
    )
    topo = reassociate_strongest(topo, channel.loss_db)
    net = LteNetworkSimulator(topo, ResourceGrid(5e6), channel, rngs.fork("net"))
    return topo, net


class TestFirstEpoch:
    def test_first_epoch_uses_full_carrier(self):
        manager = _manager()
        decisions = manager.decide(0, None)
        assert decisions[0] == set(range(N_SUBS))
        assert decisions[1] == set(range(N_SUBS))


class TestClosedLoop:
    def test_shares_respect_formula(self):
        from repro.core.interference.share import compute_share

        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        manager = _manager(ap_ids=ap_ids)
        demands = {c.client_id: float("inf") for c in topo.clients}
        obs = None
        for epoch in range(4):
            decisions = manager.decide(epoch, obs)
            result = net.run_epoch(epoch, decisions, demands)
            obs = result.observations
        manager.decide(4, obs)
        for ap_id in ap_ids:
            expected = compute_share(
                N_SUBS,
                obs[ap_id].n_active_clients,
                obs[ap_id].estimated_contenders,
            )
            assert manager.stats.last_shares[ap_id] == expected

    def test_holdings_match_decisions(self):
        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        manager = _manager(ap_ids=ap_ids)
        demands = {c.client_id: float("inf") for c in topo.clients}
        obs = None
        for epoch in range(4):
            decisions = manager.decide(epoch, obs)
            result = net.run_epoch(epoch, decisions, demands)
            obs = result.observations
        for ap_id in ap_ids:
            if manager.hoppers[ap_id].holdings:
                assert decisions[ap_id] == manager.hoppers[ap_id].holdings

    def test_improves_on_plain_lte(self):
        # The headline: CellFi reduces starvation vs uncoordinated LTE.
        from repro.baselines.plain_lte import PlainLtePolicy

        topo, net_cellfi = _scenario(seed=11, n_aps=8)
        demands = {c.client_id: float("inf") for c in topo.clients}
        ap_ids = [a.ap_id for a in topo.aps]
        manager = CellFiInterferenceManager(ap_ids, N_SUBS, RngStreams(5))
        cellfi = net_cellfi.run(10, manager, lambda e: demands)

        _, net_lte = _scenario(seed=11, n_aps=8)
        lte = net_lte.run(10, PlainLtePolicy(ap_ids, N_SUBS), lambda e: demands)

        def starved(results):
            return np.mean(
                [[not v for v in r.connected.values()] for r in results[5:]]
            )

        assert starved(cellfi) <= starved(lte)

    def test_stats_accumulate(self):
        topo, net = _scenario()
        manager = _manager(ap_ids=[a.ap_id for a in topo.aps])
        demands = {c.client_id: float("inf") for c in topo.clients}
        net.run(6, manager, lambda e: demands)
        assert manager.stats.epochs == 5  # First epoch has no observations.

    def test_share_override(self):
        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        override = {ap: 2 for ap in ap_ids}
        manager = CellFiInterferenceManager(
            ap_ids, N_SUBS, RngStreams(5), share_override=override
        )
        demands = {c.client_id: float("inf") for c in topo.clients}
        net.run(4, manager, lambda e: demands)
        for ap_id in ap_ids:
            assert len(manager.hoppers[ap_id].holdings) == 2

    def test_reuse_can_be_disabled(self):
        manager = _manager(reuse_enabled=False)
        for hopper in manager.hoppers.values():
            assert not hopper.config.reuse_enabled

    def test_missing_observation_keeps_holdings(self):
        manager = _manager(ap_ids=[0, 1])
        manager.decide(0, None)
        # Observation dict covering only AP 0.
        from repro.lte.network import ApObservation

        obs = {0: ApObservation(ap_id=0, n_active_clients=1, estimated_contenders=2)}
        decisions = manager.decide(1, obs)
        assert decisions[1]  # AP 1 still has a usable decision.
