"""Unit tests for 802.11 rates and frame timing."""

import pytest

from repro.wifi.frames import (
    FrameTimings,
    MAX_AMPDU_BYTES,
    TXOP_LIMIT_S,
)
from repro.wifi.rates import (
    BASE_MCS,
    WIFI_MCS_TABLE,
    best_mcs,
    data_rate_bps,
    rate_for_snr,
)


class TestMcsTable:
    def test_ten_entries(self):
        assert len(WIFI_MCS_TABLE) == 10

    def test_no_code_rate_below_half(self):
        # Table 1: 802.11af coding rate >= 0.5 -- the key contrast to LTE.
        assert min(m.code_rate for m in WIFI_MCS_TABLE) == pytest.approx(0.5)

    def test_efficiency_monotone(self):
        effs = [m.efficiency for m in WIFI_MCS_TABLE]
        assert effs == sorted(effs)

    def test_snr_thresholds_monotone(self):
        snrs = [m.min_snr_db for m in WIFI_MCS_TABLE]
        assert snrs == sorted(snrs)

    def test_mcs0_reference_rate(self):
        # BPSK 1/2 on 20 MHz: 6.5 Mb/s (802.11ac single stream).
        assert data_rate_bps(WIFI_MCS_TABLE[0], 20e6) == pytest.approx(6.5e6)

    def test_mcs9_reference_rate(self):
        # 256QAM 5/6 on 20 MHz: 86.7 Mb/s.
        assert data_rate_bps(WIFI_MCS_TABLE[9], 20e6) == pytest.approx(86.7e6, rel=0.01)

    def test_rates_scale_with_bandwidth(self):
        mcs = WIFI_MCS_TABLE[5]
        assert data_rate_bps(mcs, 6e6) == pytest.approx(
            data_rate_bps(mcs, 20e6) * 6 / 20
        )

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            data_rate_bps(BASE_MCS, 0.0)


class TestRateAdaptation:
    def test_below_mcs0_unreachable(self):
        # Wi-Fi at SNR 1 dB cannot communicate; LTE (CQI 1 at -6.7) can.
        assert best_mcs(1.0) is None
        assert rate_for_snr(1.0, 20e6) == 0.0

    def test_selects_highest_feasible(self):
        assert best_mcs(2.0).index == 0
        assert best_mcs(16.0).index == 4
        assert best_mcs(50.0).index == 9

    def test_monotone_in_snr(self):
        previous = -1
        for snr in range(0, 40):
            mcs = best_mcs(float(snr))
            index = -1 if mcs is None else mcs.index
            assert index >= previous
            previous = index


class TestFrameTimings:
    def test_difs_is_sifs_plus_two_slots(self):
        t = FrameTimings(bandwidth_hz=20e6)
        assert t.difs_s == pytest.approx(t.sifs_s + 2 * t.slot_s)

    def test_control_frames_longer_on_narrow_channel(self):
        wide = FrameTimings(bandwidth_hz=20e6)
        narrow = FrameTimings(bandwidth_hz=6e6)
        assert narrow.rts_s > wide.rts_s
        assert narrow.ack_s > wide.ack_s

    def test_aggregate_fills_txop(self):
        t = FrameTimings(bandwidth_hz=20e6)
        rate = 10e6  # At 10 Mb/s a 4 ms TXOP carries 5000 bytes.
        assert t.aggregate_bytes(rate) == 5000

    def test_aggregate_caps_at_65kb(self):
        t = FrameTimings(bandwidth_hz=20e6)
        assert t.aggregate_bytes(1e9) == MAX_AMPDU_BYTES

    def test_aggregate_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            FrameTimings(bandwidth_hz=20e6).aggregate_bytes(0.0)

    def test_data_frame_duration(self):
        t = FrameTimings(bandwidth_hz=20e6)
        duration = t.data_frame_s(1250, 10e6)  # 10000 bits at 10 Mb/s.
        assert duration == pytest.approx(t.preamble_s + 1e-3)

    def test_data_frame_within_txop_limit(self):
        t = FrameTimings(bandwidth_hz=20e6)
        for rate in (6.5e6, 20e6, 86.7e6):
            n_bytes = t.aggregate_bytes(rate)
            assert t.data_frame_s(n_bytes, rate) <= TXOP_LIMIT_S + t.preamble_s + 1e-4

    def test_rts_cts_overhead_larger(self):
        t = FrameTimings(bandwidth_hz=20e6)
        assert t.exchange_overhead_s(True) > t.exchange_overhead_s(False)
