"""Checkpoint/restore roundtrip fuzz: halted+resumed == uninterrupted.

For every checkpointable driver -- the event-granular outage run, the
epoch-granular saturated-LTE run, and the replication-granular convergence
run -- a run that is snapshotted mid-flight, halted, and resumed from the
snapshot must finish with exactly the same final metrics and full-state
digest as the same configuration run straight through.  One case restores
in a *fresh process* to prove nothing leaks through interpreter state.
"""

import json
import subprocess
import sys

import pytest

from repro.experiments.convergence import ConvergenceRun
from repro.experiments.db_outage import DbOutageRun
from repro.experiments.large_scale import (
    TECH_CELLFI,
    TECH_LTE,
    TECH_ORACLE,
    SaturatedLteRun,
)
from repro.sim.checkpoint import latest_checkpoint


def _db_config(seed):
    # Small but non-trivial: one outage, wire faults on, short tail.
    return dict(
        seed=seed,
        outages=((30.0, 25.0),),
        timeout_prob=0.05,
        drop_prob=0.05,
        latency_spike_prob=0.05,
        tail_s=60.0,
    )


class TestDbOutageRoundtrip:
    @pytest.mark.parametrize("seed", [2, 11, 23])
    def test_resume_matches_uninterrupted(self, seed, tmp_path):
        baseline = DbOutageRun(**_db_config(seed))
        expected = baseline.run()

        halted = DbOutageRun(**_db_config(seed))
        out = halted.run(
            checkpoint_dir=str(tmp_path),
            checkpoint_every=40.0,
            halt_at=halted.boot + 40.0,
        )
        assert out is None, "halting before the window must not yield a result"

        resume_path = latest_checkpoint(str(tmp_path))
        assert resume_path is not None
        resumed = DbOutageRun.restore(resume_path)
        result = resumed.run()
        assert result is not None
        assert result.digest == expected.digest
        assert result.counts == expected.counts
        assert resumed.run_digest() == baseline.run_digest()

    def test_restore_in_fresh_process(self, tmp_path):
        run = DbOutageRun(**_db_config(7))
        run.run(
            checkpoint_dir=str(tmp_path),
            checkpoint_every=50.0,
            halt_at=run.boot + 50.0,
        )
        path = latest_checkpoint(str(tmp_path))
        assert path is not None

        script = (
            "import json, sys\n"
            "from repro.experiments.db_outage import DbOutageRun\n"
            "run = DbOutageRun.restore(sys.argv[1])\n"
            "result = run.run()\n"
            "print(json.dumps({'digest': result.digest,"
            " 'state': run.run_digest()}))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, path],
            capture_output=True,
            text=True,
            check=True,
        )
        child = json.loads(proc.stdout.strip().splitlines()[-1])

        same = DbOutageRun(**_db_config(7))
        expected = same.run()
        assert child["digest"] == expected.digest
        assert child["state"] == same.run_digest()


class TestSaturatedLteRoundtrip:
    @pytest.mark.parametrize(
        "tech,seed", [(TECH_CELLFI, 3), (TECH_LTE, 5), (TECH_ORACLE, 9)]
    )
    def test_resume_matches_uninterrupted(self, tech, seed, tmp_path):
        kwargs = dict(
            tech=tech, seed=seed, n_aps=3, clients_per_ap=3, epochs=6
        )
        baseline = SaturatedLteRun(**kwargs)
        expected = baseline.run()

        halted = SaturatedLteRun(**kwargs)
        out = halted.run(
            checkpoint_dir=str(tmp_path), checkpoint_every=2, halt_at=3
        )
        assert out is None

        resumed = SaturatedLteRun.restore(latest_checkpoint(str(tmp_path)))
        result = resumed.run()
        assert result is not None
        assert result.throughput_bps == expected.throughput_bps
        assert result.connected_fraction == expected.connected_fraction
        assert resumed.run_digest() == baseline.run_digest()

    @pytest.mark.parametrize("tech", [TECH_LTE, TECH_CELLFI])
    def test_sharded_resume_matches_unsharded_straight_through(
        self, tech, tmp_path
    ):
        # Kill a 2-shard run at the epoch barrier, restore from the merged
        # snapshot, and require the resumed digest to equal both its own
        # straight-through run *and* the plain unsharded run: the snapshot
        # merge and the restore fan-out are both bit-exact.
        kwargs = dict(
            tech=tech,
            seed=4,
            n_aps=4,
            clients_per_ap=3,
            epochs=6,
            shards=2,
            shard_mode="inline",
        )
        unsharded = SaturatedLteRun(
            tech=tech, seed=4, n_aps=4, clients_per_ap=3, epochs=6
        )
        expected = unsharded.run()

        baseline = SaturatedLteRun(**kwargs)
        assert baseline.net.n_shards == 2
        straight = baseline.run()
        assert straight.throughput_bps == expected.throughput_bps
        assert baseline.run_digest() == unsharded.run_digest()

        halted = SaturatedLteRun(**kwargs)
        out = halted.run(
            checkpoint_dir=str(tmp_path), checkpoint_every=2, halt_at=3
        )
        assert out is None

        resumed = SaturatedLteRun.restore(latest_checkpoint(str(tmp_path)))
        assert resumed.net.n_shards == 2
        result = resumed.run()
        assert result is not None
        assert result.throughput_bps == expected.throughput_bps
        assert result.connected_fraction == expected.connected_fraction
        assert resumed.run_digest() == baseline.run_digest()
        assert resumed.run_digest() == unsharded.run_digest()


class TestConvergenceRoundtrip:
    @pytest.mark.parametrize("seed,n_nodes", [(17, 8), (4, 12)])
    def test_resume_matches_uninterrupted(self, seed, n_nodes, tmp_path):
        kwargs = dict(
            n_nodes=n_nodes, fading_p=0.3, replications=5, seed=seed
        )
        baseline = ConvergenceRun(**kwargs)
        expected = baseline.run()

        halted = ConvergenceRun(**kwargs)
        out = halted.run(
            checkpoint_dir=str(tmp_path), checkpoint_every=2, halt_at=2
        )
        assert out is None

        resumed = ConvergenceRun.restore(latest_checkpoint(str(tmp_path)))
        result = resumed.run()
        assert result == expected
        assert resumed.run_digest() == baseline.run_digest()


class TestSnapshotHygiene:
    def test_latest_checkpoint_orders_by_position(self, tmp_path):
        (tmp_path / "ckpt_00000100.000.json").write_text("{}")
        (tmp_path / "ckpt_00000090.000.json").write_text("{}")
        (tmp_path / "not_a_ckpt.json").write_text("{}")
        assert latest_checkpoint(str(tmp_path)).endswith(
            "ckpt_00000100.000.json"
        )

    def test_latest_checkpoint_missing_dir(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "nope")) is None

    def test_snapshot_digest_matches_live_registry(self, tmp_path):
        run = DbOutageRun(**_db_config(2))
        run.run_to_boot()
        path = run.save_checkpoint(str(tmp_path))
        from repro.sim.checkpoint import Snapshot

        snapshot = Snapshot.load(path)
        assert snapshot.digest() == run.run_digest()
        assert snapshot.meta["driver"] == "db_outage"
