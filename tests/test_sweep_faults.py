"""Fault injection: crashed, hung, and dying cells degrade gracefully.

A scenario that raises, blocks past the timeout, or kills its own
process must be retried the configured number of times, recorded as
``failed``/``timeout`` in the results log, and must not abort sibling
cells or the sweep itself.
"""

import os
import time

import pytest

from repro.experiments import sweep
from repro.experiments.sweep import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    SweepSpec,
    SweepTask,
    run_sweep,
)


@sweep.scenario("_faulty_cell")
def _faulty_cell(seed, mode="ok"):
    if mode == "crash":
        raise RuntimeError(f"injected failure for seed {seed}")
    if mode == "hang":
        time.sleep(60.0)
    if mode == "die":
        os._exit(3)
    return {"value": float(seed)}


def _spec(modes):
    return SweepSpec(
        "faulty",
        [
            SweepTask.make("_faulty_cell", {"seed": i, "mode": mode})
            for i, mode in enumerate(modes)
        ],
    )


def _by_mode(result):
    return {r.params["mode"]: r for r in result.records}


class TestFaultIsolation:
    @pytest.fixture(scope="class")
    def mixed(self):
        # ok siblings on both sides of every failure mode.
        return run_sweep(
            _spec(["ok", "crash", "hang", "die", "ok"]),
            jobs=2,
            timeout_s=1.0,
            retries=1,
        )

    def test_all_cells_recorded(self, mixed):
        assert len(mixed.records) == 5
        assert [r.task_id for r in mixed.records] == list(range(5))

    def test_siblings_unaffected(self, mixed):
        ok = [r for r in mixed.records if r.params["mode"] == "ok"]
        assert len(ok) == 2
        assert all(r.status == STATUS_OK for r in ok)
        assert all(r.metrics["value"] == float(r.params["seed"]) for r in ok)

    def test_crash_recorded_as_failed(self, mixed):
        record = _by_mode(mixed)["crash"]
        assert record.status == STATUS_FAILED
        assert "injected failure" in record.error

    def test_hang_recorded_as_timeout(self, mixed):
        record = _by_mode(mixed)["hang"]
        assert record.status == STATUS_TIMEOUT
        assert "timeout" in record.error

    def test_hard_exit_recorded_as_failed(self, mixed):
        record = _by_mode(mixed)["die"]
        assert record.status == STATUS_FAILED
        assert "exit code 3" in record.error

    def test_failures_exhaust_configured_retries(self, mixed):
        for mode in ("crash", "hang", "die"):
            assert _by_mode(mixed)[mode].attempts == 2  # 1 + retries

    def test_raise_on_failures(self, mixed):
        with pytest.raises(RuntimeError, match="did not complete"):
            mixed.raise_on_failures()


class TestRetryBudget:
    def test_zero_retries_single_attempt(self):
        result = run_sweep(_spec(["crash"]), jobs=1, retries=0)
        (record,) = result.records
        assert record.status == STATUS_FAILED
        assert record.attempts == 1

    def test_more_retries_more_attempts(self):
        result = run_sweep(_spec(["crash"]), jobs=1, retries=3)
        (record,) = result.records
        assert record.attempts == 4

    def test_timeout_terminates_promptly(self):
        start = time.monotonic()
        result = run_sweep(_spec(["hang"]), jobs=1, timeout_s=0.5, retries=0)
        elapsed = time.monotonic() - start
        (record,) = result.records
        assert record.status == STATUS_TIMEOUT
        # Far below the 60 s the cell would sleep: the worker was killed.
        assert elapsed < 30.0


class TestInlineFailures:
    def test_inline_records_failure_without_raising(self):
        result = run_sweep(_spec(["ok", "crash"]), jobs=0)
        by_mode = _by_mode(result)
        assert by_mode["ok"].status == STATUS_OK
        assert by_mode["crash"].status == STATUS_FAILED
        assert "injected failure" in by_mode["crash"].error

    def test_failed_cells_land_in_the_log(self, tmp_path):
        out = tmp_path / "faults.jsonl"
        run_sweep(_spec(["ok", "crash"]), jobs=2, retries=0, out_path=out)
        from repro.experiments.sweep import load_records

        statuses = {r.params["mode"]: r.status for r in load_records(out)}
        assert statuses == {"ok": STATUS_OK, "crash": STATUS_FAILED}

    def test_unknown_scenario_is_a_recorded_failure(self):
        spec = SweepSpec("ghost", [SweepTask.make("_no_such_scenario", {"x": 1})])
        result = run_sweep(spec, jobs=1, retries=0)
        (record,) = result.records
        assert record.status == STATUS_FAILED
        assert "unknown sweep scenario" in record.error
