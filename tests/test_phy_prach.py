"""Unit tests for PRACH preambles and detectors."""

import numpy as np
import pytest

from repro.phy.prach import (
    DETECTION_THRESHOLD_PAPR,
    FastPrachDetector,
    NaivePrachDetector,
    PrachPreamble,
    ZC_LENGTH,
    detection_probability,
    false_alarm_rate,
    noise_only_window,
    transmit_preamble,
    zadoff_chu,
)


class TestZadoffChu:
    def test_constant_amplitude(self):
        seq = zadoff_chu(25)
        assert np.allclose(np.abs(seq), 1.0)

    def test_zero_autocorrelation_property(self):
        # Cyclic autocorrelation of a ZC sequence is an impulse.
        seq = zadoff_chu(25)
        corr = np.fft.ifft(np.fft.fft(seq) * np.conj(np.fft.fft(seq)))
        power = np.abs(corr)
        assert power[0] == pytest.approx(ZC_LENGTH, rel=1e-6)
        assert np.max(power[1:]) < 1e-6 * ZC_LENGTH

    def test_cross_correlation_flat(self):
        # Different roots of a prime-length ZC family have sqrt(N) cross
        # correlation in every bin.
        a, b = zadoff_chu(25), zadoff_chu(34)
        corr = np.fft.ifft(np.fft.fft(a) * np.conj(np.fft.fft(b)))
        assert np.allclose(np.abs(corr), np.sqrt(ZC_LENGTH), rtol=1e-6)

    def test_bad_root_raises(self):
        with pytest.raises(ValueError):
            zadoff_chu(0)
        with pytest.raises(ValueError):
            zadoff_chu(ZC_LENGTH)

    def test_preamble_applies_cyclic_shift(self):
        base = PrachPreamble(root=25, cyclic_shift=0).samples()
        shifted = PrachPreamble(root=25, cyclic_shift=13).samples()
        assert np.allclose(np.roll(base, -13), shifted)


class TestFastDetector:
    def test_detects_at_minus_10db(self):
        rng = np.random.default_rng(1)
        detector = FastPrachDetector(root=25)
        p = detection_probability(detector, -10.0, rng, trials=30)
        assert p >= 0.95

    def test_misses_in_deep_noise(self):
        rng = np.random.default_rng(2)
        detector = FastPrachDetector(root=25)
        p = detection_probability(detector, -25.0, rng, trials=30)
        assert p <= 0.2

    def test_low_false_alarm_rate(self):
        rng = np.random.default_rng(3)
        detector = FastPrachDetector(root=25)
        assert false_alarm_rate(detector, rng, trials=150) <= 0.02

    def test_works_for_any_cyclic_shift(self):
        # The fast detector must not care which signature number was sent.
        rng = np.random.default_rng(4)
        detector = FastPrachDetector(root=25)
        for shift in (0, 7, 100, 500):
            window = transmit_preamble(
                PrachPreamble(25, shift), snr_db=0.0, rng=rng
            )
            assert detector.detect(window).detected

    def test_works_for_any_delay(self):
        rng = np.random.default_rng(5)
        detector = FastPrachDetector(root=25)
        for delay in (0, 50, 400, 800):
            window = transmit_preamble(
                PrachPreamble(25, 0), snr_db=0.0, rng=rng, delay_samples=delay
            )
            result = detector.detect(window)
            assert result.detected
            assert result.cyclic_shift == delay

    def test_blind_to_other_roots(self):
        # Correlating against the wrong root gives flat output (by the ZC
        # cross-correlation property) and must not fire.
        rng = np.random.default_rng(6)
        detector = FastPrachDetector(root=25)
        window = transmit_preamble(PrachPreamble(34, 0), snr_db=10.0, rng=rng)
        assert not detector.detect(window).detected

    def test_batch_matches_single(self):
        rng = np.random.default_rng(7)
        detector = FastPrachDetector(root=25)
        windows = np.stack(
            [
                transmit_preamble(PrachPreamble(25, 3), -10.0, rng),
                noise_only_window(ZC_LENGTH, rng),
                transmit_preamble(PrachPreamble(25, 9), -10.0, rng, delay_samples=40),
            ]
        )
        flags = detector.detect_batch(windows)
        singles = [detector.detect(w).detected for w in windows]
        assert list(flags) == singles

    def test_batch_shape_validated(self):
        detector = FastPrachDetector(root=25)
        with pytest.raises(ValueError):
            detector.detect_batch(np.zeros((3, 100), dtype=complex))


class TestNaiveDetector:
    def test_identifies_root(self):
        rng = np.random.default_rng(8)
        detector = NaivePrachDetector(candidate_roots=[25, 34, 120])
        window = transmit_preamble(PrachPreamble(34, 5), snr_db=0.0, rng=rng)
        result = detector.detect(window)
        assert result.detected
        assert result.root == 34

    def test_complexity_scales_with_root_count(self):
        rng = np.random.default_rng(9)
        window = noise_only_window(ZC_LENGTH, rng)
        small = NaivePrachDetector(candidate_roots=[25]).detect(window)
        large = NaivePrachDetector(candidate_roots=list(range(20, 36))).detect(window)
        assert large.complex_macs == pytest.approx(16 * small.complex_macs, rel=0.01)

    def test_fast_detector_is_cheaper(self):
        rng = np.random.default_rng(10)
        window = noise_only_window(ZC_LENGTH, rng)
        naive = NaivePrachDetector(candidate_roots=list(range(20, 36))).detect(window)
        fast = FastPrachDetector(root=25).detect(window)
        assert naive.complex_macs / fast.complex_macs > 10.0

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            NaivePrachDetector(candidate_roots=[])


class TestChannel:
    def test_snr_controls_noise_power(self):
        rng = np.random.default_rng(11)
        quiet = transmit_preamble(PrachPreamble(25, 0), snr_db=30.0, rng=rng)
        noisy = transmit_preamble(PrachPreamble(25, 0), snr_db=-10.0, rng=rng)
        clean = PrachPreamble(25, 0).samples()
        assert np.linalg.norm(quiet - clean) < np.linalg.norm(noisy - clean)

    def test_noise_window_power(self):
        rng = np.random.default_rng(12)
        window = noise_only_window(10_000, rng, noise_power=2.0)
        assert np.mean(np.abs(window) ** 2) == pytest.approx(2.0, rel=0.1)
