"""Tests for the LTE-U-style duty-cycling coexistence wrapper."""

import numpy as np
import pytest

from repro.core.coexistence import (
    DutyCyclePolicy,
    MAX_DUTY_CYCLE,
    MIN_DUTY_CYCLE,
)
from repro.core.interference.manager import CellFiInterferenceManager
from repro.baselines.plain_lte import PlainLtePolicy
from repro.experiments.common import build_scenario
from repro.lte.network import LteNetworkSimulator
from repro.sim.rng import RngStreams
from repro.traffic.backlogged import saturated_demand_fn


def _policy(**kwargs):
    return DutyCyclePolicy(PlainLtePolicy([0, 1], 13), **kwargs)


class TestSchedule:
    def test_on_epochs_lead_each_window(self):
        policy = _policy(period_epochs=10, initial_duty_cycle=0.8)
        pattern = [policy.is_on(e) for e in range(10)]
        assert pattern == [True] * 8 + [False] * 2

    def test_pattern_repeats(self):
        policy = _policy(period_epochs=5, initial_duty_cycle=0.6)
        first = [policy.is_on(e) for e in range(5)]
        second = [policy.is_on(e) for e in range(5, 10)]
        assert first == second

    def test_off_epochs_silence_everyone(self):
        policy = _policy(period_epochs=2, initial_duty_cycle=0.5)
        on = policy.decide(0, None)
        off = policy.decide(1, None)
        assert all(subs for subs in on.values())
        assert all(subs == set() for subs in off.values())

    def test_realised_duty_cycle_tracks_schedule(self):
        policy = _policy(period_epochs=10, initial_duty_cycle=0.8)
        for epoch in range(40):
            policy.decide(epoch, None)
        assert policy.realised_duty_cycle == pytest.approx(0.8, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            _policy(period_epochs=1)
        with pytest.raises(ValueError):
            _policy(initial_duty_cycle=0.1)


class TestAdaptation:
    def test_busy_wifi_shrinks_duty_cycle(self):
        policy = _policy(
            period_epochs=5, initial_duty_cycle=0.8,
            wifi_activity=lambda epoch: 1.0,
        )
        for epoch in range(50):
            policy.decide(epoch, None)
        assert policy.duty_cycle == pytest.approx(MIN_DUTY_CYCLE, abs=0.05)

    def test_idle_wifi_grows_duty_cycle(self):
        policy = _policy(
            period_epochs=5, initial_duty_cycle=0.5,
            wifi_activity=lambda epoch: 0.0,
        )
        for epoch in range(50):
            policy.decide(epoch, None)
        assert policy.duty_cycle == pytest.approx(MAX_DUTY_CYCLE, abs=0.05)

    def test_bad_activity_rejected(self):
        policy = _policy(wifi_activity=lambda epoch: 2.0)
        with pytest.raises(ValueError):
            policy.decide(0, None)


class TestComposition:
    def test_wraps_cellfi_end_to_end(self):
        scenario = build_scenario(seed=6, n_aps=4, clients_per_ap=3)
        net = LteNetworkSimulator(
            scenario.topology, scenario.grid(), scenario.channel,
            scenario.rngs.fork("net"),
        )
        inner = CellFiInterferenceManager(
            scenario.ap_ids, net.grid.n_subchannels, scenario.rngs.fork("mgr")
        )
        policy = DutyCyclePolicy(inner, period_epochs=4, initial_duty_cycle=0.75)
        results = net.run(12, policy, saturated_demand_fn(scenario.topology))
        # OFF epochs deliver nothing; ON epochs deliver.
        off_epochs = [r for e, r in enumerate(results) if not policy.is_on(e)]
        on_epochs = [r for e, r in enumerate(results) if policy.is_on(e)]
        assert all(
            sum(r.throughput_bps.values()) == 0.0 for r in off_epochs
        )
        assert all(sum(r.throughput_bps.values()) > 0.0 for r in on_epochs[1:])

    def test_throughput_scales_with_duty_cycle(self):
        scenario = build_scenario(seed=7, n_aps=3, clients_per_ap=3)
        totals = {}
        for duty in (0.5, 0.9):
            net = LteNetworkSimulator(
                scenario.topology, scenario.grid(), scenario.channel,
                scenario.rngs.fork(f"net-{duty}"),
            )
            policy = DutyCyclePolicy(
                PlainLtePolicy(scenario.ap_ids, net.grid.n_subchannels),
                period_epochs=10,
                initial_duty_cycle=duty,
            )
            results = net.run(20, policy, saturated_demand_fn(scenario.topology))
            totals[duty] = sum(sum(r.throughput_bps.values()) for r in results)
        ratio = totals[0.5] / totals[0.9]
        assert ratio == pytest.approx(0.5 / 0.9, rel=0.15)
