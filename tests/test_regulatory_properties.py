"""Property-style net: grace mode never violates ETSI EN 301 598.

The unit tests pin individual vacate paths; these tests sweep seeded
random fault schedules through the full AP + resilient-client + faulty
transport stack and assert the regulatory invariant *always* holds:

* zero vacate-deadline violations, with the compliance monitor fed the
  ground-truth channel-loss time (not the client's guess) when the
  channel is really withdrawn mid-outage;
* a transient fault alone (no real withdrawal, outage shorter than the
  deadline) never silences the cell at all.
"""

import pytest

from repro.experiments.db_outage import run_db_outage
from repro.tvws.regulatory import VACATE_DEADLINE_S

#: Seeds x fault mixes for the property net.  Each seed draws its own
#: fault schedule; the mixes cover timeout-heavy, drop-heavy, error-heavy
#: and everything-at-once wires.
SEEDS = range(1, 13)


def _mix(seed):
    """A deterministic per-seed fault mix (cycles through four shapes)."""
    shapes = [
        dict(timeout_prob=0.25),
        dict(drop_prob=0.2, latency_spike_prob=0.1),
        dict(error_prob=0.15, malformed_prob=0.1),
        dict(
            timeout_prob=0.1,
            drop_prob=0.1,
            error_prob=0.05,
            malformed_prob=0.05,
            latency_spike_prob=0.1,
        ),
    ]
    return shapes[seed % len(shapes)]


class TestGraceNeverViolates:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_long_outage_with_faults_stays_compliant(self, seed):
        result = run_db_outage(
            seed=seed,
            outages=((40.0, 90.0),),
            tail_s=150.0,
            **_mix(seed),
        )
        assert result.compliant, result.violations
        assert result.violations == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_withdrawal_during_outage_stays_compliant(self, seed):
        # The channel is genuinely withdrawn while the database is
        # unreachable; the monitor gets the ground-truth loss time, so
        # any grace deadline anchored too late would be flagged here.
        result = run_db_outage(
            seed=seed,
            outages=((40.0, 90.0),),
            withdraw_in_outage=0,
            tail_s=150.0,
            **_mix(seed),
        )
        assert result.compliant, result.violations

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_short_outage_rides_on_cached_lease(self, seed):
        # An outage comfortably inside the 60 s deadline: grace mode
        # absorbs it, the radio never stops, throughput loss is zero.
        result = run_db_outage(seed=seed, outages=((40.0, 20.0),), tail_s=100.0)
        assert result.compliant
        assert result.counts.get("forced-vacate", 0) == 0
        assert result.downtime_s == 0.0
        assert result.counts.get("grace-entered", 0) >= 1

    def test_forced_vacate_lands_before_the_deadline(self):
        result = run_db_outage(seed=3, outages=((40.0, 120.0),), tail_s=150.0)
        assert result.counts.get("forced-vacate", 0) == 1
        vacated = [t for t, e in result.timeline if e == "radio-off"]
        confirmed_before = [
            t
            for t, kind, _ in result.selector_timeline
            if kind == "grace-entered"
        ]
        assert vacated and confirmed_before
        # The vacate is within the ETSI deadline of grace entry (which is
        # itself later than the last successful validation).
        assert vacated[0] - confirmed_before[0] <= VACATE_DEADLINE_S + 1e-6
        assert result.compliant

    def test_failover_avoids_grace_entirely(self):
        result = run_db_outage(
            seed=2, outages=((40.0, 90.0),), secondary=True, tail_s=150.0
        )
        assert result.compliant
        assert result.counts.get("failover", 0) >= 1
        assert result.counts.get("forced-vacate", 0) == 0
        assert result.downtime_s == 0.0
