"""Worker telemetry shipping + parent-side shard merging.

Covers the cross-shard telemetry plane in isolation from the shard
engine (see docs/OBSERVABILITY.md):

* :class:`repro.obs.shipping.TelemetryShipper` ships *incremental*
  payloads -- each section holds only what changed since the previous
  payload, so repeated payloads never double-count;
* :class:`repro.obs.shardmerge.ShardTelemetryMerger` folds payloads
  into the parent telemetry under ``shard<k>.`` labels with exactly-once
  epoch deduplication, globally unique span ids, and salvage semantics
  (trace-only, tagged);
* the Chrome exporter maps merged shard records onto per-shard process
  tracks while unsharded traces stay on the single classic track;
* ``repro.obs.validate`` accepts shard-merged timelines and rejects
  overlapping span ids.
"""

import json

import pytest

from repro.obs import Telemetry
from repro.obs.shardmerge import ShardTelemetryMerger, shard_prefix
from repro.obs.shipping import PAYLOAD_VERSION, TelemetryShipper
from repro.obs.validate import (
    TraceValidationError,
    validate_chrome_trace,
    validate_jsonl_file,
)

EDGES = (1.0, 10.0)


def make_worker_tel(trace=True, profile=False):
    tel = Telemetry(trace=trace, profile=profile)
    return tel, TelemetryShipper(tel)


class TestShipperPayloads:
    def test_unknown_kind_rejected(self):
        _, shipper = make_worker_tel()
        with pytest.raises(ValueError, match="unknown payload kind"):
            shipper.payload("bogus")

    def test_epoch_kind_requires_epoch_index(self):
        _, shipper = make_worker_tel()
        with pytest.raises(ValueError, match="epoch index"):
            shipper.payload("epoch")

    def test_empty_payload_has_only_header(self):
        _, shipper = make_worker_tel()
        payload = shipper.payload("flush")
        assert payload == {"v": PAYLOAD_VERSION, "kind": "flush"}

    def test_epoch_payload_carries_epoch(self):
        _, shipper = make_worker_tel()
        assert shipper.payload("epoch", 7)["epoch"] == 7

    def test_counter_deltas_not_totals(self):
        tel, shipper = make_worker_tel()
        tel.inc("lte.epochs", 3.0)
        first = shipper.payload("epoch", 0)
        assert first["metrics"]["counters"] == {"lte.epochs": 3.0}
        tel.inc("lte.epochs", 2.0)
        second = shipper.payload("epoch", 1)
        assert second["metrics"]["counters"] == {"lte.epochs": 2.0}
        # Nothing new: the counters section disappears entirely.
        assert "metrics" not in shipper.payload("epoch", 2)

    def test_gauges_ship_on_change_only(self):
        tel, shipper = make_worker_tel()
        tel.gauge("queue.depth", 5.0)
        assert shipper.payload("flush")["metrics"]["gauges"] == {
            "queue.depth": 5.0
        }
        # Unchanged gauge: not re-shipped.
        tel.gauge("queue.depth", 5.0)
        assert "metrics" not in shipper.payload("flush")
        tel.gauge("queue.depth", 2.0)
        assert shipper.payload("flush")["metrics"]["gauges"] == {
            "queue.depth": 2.0
        }

    def test_histogram_ships_bucket_deltas(self):
        tel, shipper = make_worker_tel()
        tel.observe("rtt", 0.5, edges=EDGES)
        tel.observe("rtt", 5.0, edges=EDGES)
        first = shipper.payload("flush")["metrics"]["histograms"]["rtt"]
        assert first["edges"] == list(EDGES)
        assert first["counts"] == [1, 1, 0]
        assert first["count"] == 2
        assert first["sum"] == pytest.approx(5.5)
        tel.observe("rtt", 50.0, edges=EDGES)
        second = shipper.payload("flush")["metrics"]["histograms"]["rtt"]
        assert second["counts"] == [0, 0, 1]
        assert second["count"] == 1
        assert second["sum"] == pytest.approx(50.0)

    def test_trace_rows_ship_once(self):
        tel, shipper = make_worker_tel()
        with tel.span("epoch", "sim"):
            pass
        first = shipper.payload("epoch", 0)
        assert [row["name"] for row in first["trace"]] == ["epoch"]
        assert "trace" not in shipper.payload("epoch", 1)

    def test_profile_ships_call_deltas(self):
        tel, shipper = make_worker_tel(trace=False, profile=True)
        tel.profiler.record("site", 0.25)
        first = shipper.payload("flush")["profile"]
        assert first == [
            {"site": "site", "calls": 1, "total_s": 0.25, "max_s": 0.25}
        ]
        tel.profiler.record("site", 0.05)
        second = shipper.payload("flush")["profile"][0]
        assert second["calls"] == 1
        assert second["total_s"] == pytest.approx(0.05)
        assert second["max_s"] == pytest.approx(0.25)

    def test_payload_is_json_serializable(self):
        tel, shipper = make_worker_tel()
        tel.inc("c")
        tel.gauge("g", 1.5)
        tel.observe("h", 3.0, edges=EDGES)
        with tel.span("s", "sim"):
            pass
        json.dumps(shipper.payload("epoch", 0))


class TestShardMerger:
    def shipped(self, build):
        tel, shipper = make_worker_tel()
        build(tel)
        return shipper.payload("epoch", 0)

    def test_metrics_merge_under_shard_prefix(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        payload = self.shipped(lambda tel: tel.inc("lte.epochs", 4.0))
        assert merger.merge(1, payload, parent)
        counters = parent.registry.snapshot()["counters"]
        assert counters == {f"{shard_prefix(1)}.lte.epochs": 4.0}

    def test_epoch_dedup_is_exactly_once(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        payload = self.shipped(lambda tel: tel.inc("lte.epochs"))
        assert merger.merge(0, payload, parent)
        # A journal replay re-produces the same epoch payload: dropped.
        assert not merger.merge(0, dict(payload), parent)
        assert merger.stats["duplicates_dropped"] == 1
        assert parent.registry.snapshot()["counters"]["shard0.lte.epochs"] == 1.0

    def test_dedup_is_per_shard(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        payload = self.shipped(lambda tel: tel.inc("lte.epochs"))
        assert merger.merge(0, payload, parent)
        assert merger.merge(1, dict(payload), parent)

    def test_reset_horizon_allows_remerge_after_restore(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        payload = self.shipped(lambda tel: tel.inc("lte.epochs"))
        assert merger.merge(0, payload, parent)
        merger.reset_horizon()
        assert merger.merge(0, dict(payload), parent)

    def test_flush_payloads_bypass_the_horizon(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        tel, shipper = make_worker_tel()
        tel.inc("residue")
        assert merger.merge(0, shipper.payload("epoch", 5), parent)
        tel.inc("residue")
        assert merger.merge(0, shipper.payload("flush"), parent)

    def test_none_telemetry_and_garbage_payloads_refused(self):
        merger = ShardTelemetryMerger()
        assert not merger.merge(0, {"v": 1, "kind": "flush"}, None)
        assert not merger.merge(0, "garbled", Telemetry())
        assert merger.stats["payloads_merged"] == 0

    def test_span_ids_unique_across_shards(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()

        def build(tel):
            with tel.span("epoch", "sim"):
                pass
            with tel.span("epoch", "sim"):
                pass

        merger.merge(0, self.shipped(build), parent)
        merger.merge(1, self.shipped(build), parent)
        span_ids = [
            r.args["span_id"] for r in parent.tracer.records if r.ph == "X"
        ]
        assert span_ids == ["s0-0", "s0-1", "s1-0", "s1-1"]
        assert merger.stats["spans_merged"] == 4

    def test_span_ids_unique_across_merger_instances(self):
        # One run can build several sharded networks (one per tech in
        # fig9a) that all merge into the same parent tracer: each gets
        # its own merger, but the span sequence must keep advancing.
        parent = Telemetry(trace=True)

        def build(tel):
            with tel.span("epoch", "sim"):
                pass

        ShardTelemetryMerger().merge(0, self.shipped(build), parent)
        ShardTelemetryMerger().merge(0, self.shipped(build), parent)
        span_ids = [
            r.args["span_id"] for r in parent.tracer.records if r.ph == "X"
        ]
        assert span_ids == ["s0-0", "s0-1"]

    def test_trace_rows_get_shard_arg_and_cat_prefix(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        merger.merge(
            2,
            self.shipped(lambda tel: tel.event("boom", cat="sim", t=1.0)),
            parent,
        )
        (record,) = parent.tracer.records
        assert record.cat == "shard2.sim"
        assert record.args["shard"] == 2
        # Instants carry no span_id (only X rows can overlap).
        assert "span_id" not in record.args

    def test_salvage_keeps_trace_only_and_tags_rows(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()

        def build(tel):
            tel.inc("lte.epochs")
            with tel.span("partial", "sim"):
                pass

        assert merger.merge(0, self.shipped(build), parent, salvage=True)
        # Metrics dropped: journal replay regenerates the epoch in full.
        assert parent.registry.snapshot()["counters"] == {}
        (record,) = parent.tracer.records
        assert record.args["salvaged"] is True
        assert merger.stats["salvaged_payloads"] == 1

    def test_histograms_accumulate_bucket_deltas(self):
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()

        def build(tel):
            tel.observe("rtt", 0.5, edges=EDGES)
            tel.observe("rtt", 50.0, edges=EDGES)

        merger.merge(0, self.shipped(build), parent)
        merger.merge(0, self.shipped(build), parent)  # deduped (same epoch)
        tel, shipper = make_worker_tel()
        build(tel)
        merger.merge(0, shipper.payload("epoch", 1), parent)
        hist = parent.registry.snapshot()["histograms"]["shard0.rtt"]
        assert hist["counts"] == [2, 0, 2]
        assert hist["count"] == 4

    def test_profile_rows_merge_into_parent_profiler(self):
        parent = Telemetry(profile=True)
        merger = ShardTelemetryMerger()
        tel, shipper = make_worker_tel(trace=False, profile=True)
        tel.profiler.record("site", 0.2)
        merger.merge(3, shipper.payload("epoch", 0), parent)
        tel.profiler.record("site", 0.6)
        merger.merge(3, shipper.payload("epoch", 1), parent)
        (row,) = parent.profiler.rows()
        assert row["site"] == "shard3.site"
        assert row["calls"] == 2
        assert row["total_s"] == pytest.approx(0.8)
        assert row["max_us"] == pytest.approx(0.6e6)

    def test_merged_metrics_match_worker_totals(self):
        """Summed epoch deltas reproduce the worker's own totals."""
        parent = Telemetry(trace=True)
        merger = ShardTelemetryMerger()
        tel, shipper = make_worker_tel()
        for epoch in range(5):
            tel.inc("lte.epochs")
            tel.inc("lte.served_bits", 1000.0 * (epoch + 1))
            merger.merge(0, shipper.payload("epoch", epoch), parent)
        counters = parent.registry.snapshot()["counters"]
        worker_counters = tel.registry.snapshot()["counters"]
        for name, total in worker_counters.items():
            assert counters[f"shard0.{name}"] == pytest.approx(total)


class TestChromeShardTracks:
    def merged_tracer(self):
        parent = Telemetry(trace=True)
        parent.tracer.complete("shard.barrier.commit", "supervisor", 0.0, 1.0)
        merger = ShardTelemetryMerger()
        for shard in (0, 1):
            tel, shipper = make_worker_tel()
            with tel.span("epoch", "sim"):
                pass
            merger.merge(shard, shipper.payload("epoch", 0), parent)
        return parent.tracer

    def test_shard_records_get_their_own_pid_tracks(self):
        doc = self.merged_tracer().chrome_trace()
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "process_name"
        }
        assert process_names == {2: "shard0", 3: "shard1"}
        supervisor = [
            e
            for e in doc["traceEvents"]
            if e["name"] == "shard.barrier.commit"
        ]
        assert [e["pid"] for e in supervisor] == [1]

    def test_unsharded_trace_has_no_process_metadata(self):
        tel = Telemetry(trace=True)
        with tel.span("epoch", "sim"):
            pass
        doc = tel.tracer.chrome_trace()
        assert all(e["name"] != "process_name" for e in doc["traceEvents"])
        assert {e["pid"] for e in doc["traceEvents"]} == {1}

    def test_merged_chrome_trace_validates(self):
        assert validate_chrome_trace(self.merged_tracer().chrome_trace()) > 0


class TestValidatorSpanIds:
    def duplicate_doc(self):
        return {
            "traceEvents": [
                {
                    "name": "epoch", "cat": "shard0.sim", "ph": "X",
                    "ts": 0.0, "dur": 1.0, "pid": 2, "tid": 1,
                    "args": {"shard": 0, "span_id": "s0-0"},
                },
                {
                    "name": "epoch", "cat": "shard1.sim", "ph": "X",
                    "ts": 0.0, "dur": 1.0, "pid": 3, "tid": 1,
                    "args": {"shard": 1, "span_id": "s0-0"},
                },
            ]
        }

    def test_overlapping_span_ids_rejected(self):
        with pytest.raises(TraceValidationError, match="overlapping shard"):
            validate_chrome_trace(self.duplicate_doc())

    def test_non_string_span_id_rejected(self):
        doc = self.duplicate_doc()
        doc["traceEvents"] = doc["traceEvents"][:1]
        doc["traceEvents"][0]["args"]["span_id"] = 7
        with pytest.raises(TraceValidationError, match="must be a string"):
            validate_chrome_trace(doc)

    def test_jsonl_duplicate_span_ids_rejected(self, tmp_path):
        row = {
            "name": "epoch", "cat": "shard0.sim", "ph": "X", "t": 0.0,
            "dur": 1.0, "args": {"shard": 0, "span_id": "s0-0"},
        }
        path = tmp_path / "dup.jsonl"
        path.write_text(json.dumps(row) + "\n" + json.dumps(row) + "\n")
        with pytest.raises(TraceValidationError, match="overlapping shard"):
            validate_jsonl_file(path)

    def test_jsonl_shard_tracks_accepted(self, tmp_path):
        rows = [
            {
                "name": "epoch", "cat": f"shard{k}.sim", "ph": "X", "t": 0.0,
                "dur": 1.0, "args": {"shard": k, "span_id": f"s{k}-0"},
            }
            for k in (0, 1)
        ]
        path = tmp_path / "ok.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert validate_jsonl_file(path) == 2
