"""Batched gain-fill kernels vs the scalar oracle: bit-identity test net.

Every assertion in this module is exact (``==`` / ``array_equal``, never
``approx``): the batched fill path feeds the same golden-digest regression
nets as the scalar oracle, so a single ulp of drift in any kernel is a
silent fork of the physics.  The suite covers

* elementwise batch == scalar for every concrete path-loss model
  (hypothesis-driven distances incl. 0.0, subnormals and the 1 m clamp
  boundary),
* the probed vector-math layer (``repro.phy.vecmath``), whose routines
  must equal the ``math``-module scalar loop whichever way the
  once-per-process exactness probe resolved on this host,
* shadowing batch identity across sigmas (incl. 0.0), endpoint swap
  symmetry and the pinned ``:.1f`` key-quantization contract,
* antenna ``gains_towards`` identity for both patterns,
* full :class:`GainMatrixCache` builds (batched vs scalar fill mode)
  with antennas, shadowing and culling, plus the exact strict-``>``
  cull boundary,
* registry completeness: a new ``PathLossModel`` (or ``Antenna``)
  subclass fails here until it implements the batch API and registers a
  sample instance below.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lte.network import LteNetworkSimulator
from repro.phy import vecmath
from repro.phy.antenna import Antenna, OmniAntenna, SectorAntenna
from repro.phy.propagation import (
    FILL_BATCHED,
    FILL_SCALAR,
    CompositeChannel,
    FreeSpacePathLoss,
    GainMatrixCache,
    LogDistancePathLoss,
    LogNormalShadowing,
    PathLossModel,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology

# ---------------------------------------------------------------------------
# Sample registries.  The completeness tests below assert that every
# concrete subclass appears here, so adding a model without extending the
# identity suite is a test failure, not a silent scalar fallback.

PATH_LOSS_SAMPLES = {
    FreeSpacePathLoss: FreeSpacePathLoss(617e6),
    LogDistancePathLoss: LogDistancePathLoss(617e6, exponent=3.7, reference_m=10.0),
    UrbanHataPathLoss: UrbanHataPathLoss(),
}

ANTENNA_SAMPLES = {
    OmniAntenna: OmniAntenna(gain_dbi=3.0),
    SectorAntenna: SectorAntenna(
        peak_gain_dbi=7.0, boresight_deg=-120.0, beamwidth_deg=120.0
    ),
}

#: Distances that exercise every branch: zero (clamped), subnormal,
#: the exact 1 m clamp boundary and its neighbours, the log-distance
#: 10 m reference boundary, the Hata 10 m near-field floor, and far field.
EDGE_DISTANCES = [
    0.0,
    5e-324,
    1.0 - 2**-53,
    1.0,
    1.0 + 2**-52,
    9.999999999,
    10.0,
    10.000000001,
    1234.567,
    2.5e4,
]

distance_lists = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
        st.sampled_from(EDGE_DISTANCES),
    ),
    min_size=1,
    max_size=64,
)

coordinate = st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False)


def _concrete_subclasses(base):
    found = set()
    stack = list(base.__subclasses__())
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if not getattr(cls, "__abstractmethods__", None):
            found.add(cls)
    return found


# ---------------------------------------------------------------------------
# Vector-math layer


class TestVecMath:
    def test_probed_unaries_equal_scalar(self):
        rng = np.random.default_rng(7)
        x = np.concatenate(
            [
                rng.uniform(1e-12, 1.0, 997),  # u1 domain
                rng.uniform(1.0, 1e6, 997),  # distance/ratio domain
                np.array([1.0, 0.5, 2.0, 1.0 - 2**-53]),
            ]
        )
        assert list(vecmath.vec_log10(x)) == [math.log10(v) for v in x.tolist()]
        assert list(vecmath.vec_log(x)) == [math.log(v) for v in x.tolist()]
        angles = rng.uniform(0.0, 2.0 * math.pi, 2000)
        assert list(vecmath.vec_cos(angles)) == [
            math.cos(v) for v in angles.tolist()
        ]

    def test_bearing_equals_scalar(self):
        rng = np.random.default_rng(11)
        dy = rng.uniform(-1e4, 1e4, 1500)
        dx = rng.uniform(-1e4, 1e4, 1500)
        dy[:4] = [0.0, -0.0, 0.0, 1.0]
        dx[:4] = [0.0, 0.0, -1.0, 0.0]
        assert list(vecmath.vec_bearing_deg(dy, dx)) == [
            math.degrees(math.atan2(a, b)) for a, b in zip(dy.tolist(), dx.tolist())
        ]

    def test_hypot_equals_scalar_adversarial(self):
        rng = np.random.default_rng(13)
        specials = [
            (0.0, 0.0),
            (-0.0, 0.0),
            (3.0, 4.0),
            (5e-324, 0.0),
            (5e-324, 5e-324),
            (1e-300, 5.0),  # extreme ratio: Dekker error term underflows
            (1e308, 1e308),  # overflow without scaling
            (2.2e-308, 3.1e-308),  # subnormal-boundary maxima
            (float("inf"), 1.0),
            (float("nan"), 1.0),
            (float("inf"), float("nan")),
        ]
        dx = np.concatenate(
            [rng.uniform(-1e5, 1e5, 4000), np.array([a for a, _ in specials])]
        )
        dy = np.concatenate(
            [rng.uniform(-1e5, 1e5, 4000), np.array([b for _, b in specials])]
        )
        got = vecmath.vec_hypot(dx, dy)
        for g, a, b in zip(got.tolist(), dx.tolist(), dy.tolist()):
            want = math.hypot(a, b)
            assert g == want or (math.isnan(g) and math.isnan(want))

    def test_report_shape(self):
        report = vecmath.vectorized_report()
        assert set(report) == {"hypot", "log10", "log", "cos", "bearing_deg"}
        assert all(isinstance(v, bool) for v in report.values())


# ---------------------------------------------------------------------------
# Path-loss models


class TestPathLossBatchIdentity:
    @pytest.mark.parametrize(
        "model", PATH_LOSS_SAMPLES.values(), ids=lambda m: type(m).__name__
    )
    @given(distances=distance_lists)
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_scalar(self, model, distances):
        batch = model.path_loss_db_batch(np.array(distances))
        assert batch.dtype == np.float64
        assert list(batch) == [model.path_loss_db(d) for d in distances]

    @pytest.mark.parametrize(
        "model", PATH_LOSS_SAMPLES.values(), ids=lambda m: type(m).__name__
    )
    def test_edge_distances(self, model):
        batch = model.path_loss_db_batch(np.array(EDGE_DISTANCES))
        assert list(batch) == [model.path_loss_db(d) for d in EDGE_DISTANCES]

    @pytest.mark.parametrize(
        "model", PATH_LOSS_SAMPLES.values(), ids=lambda m: type(m).__name__
    )
    def test_negative_distance_raises_in_both_paths(self, model):
        with pytest.raises(ValueError):
            model.path_loss_db(-1.0)
        with pytest.raises(ValueError):
            model.path_loss_db_batch(np.array([1.0, -1.0, 2.0]))

    def test_batch_preserves_shape(self):
        model = PATH_LOSS_SAMPLES[UrbanHataPathLoss]
        d = np.linspace(0.0, 3000.0, 12).reshape(3, 4)
        batch = model.path_loss_db_batch(d)
        assert batch.shape == (3, 4)
        flat = model.path_loss_db_batch(d.ravel())
        assert np.array_equal(batch.ravel(), flat)


class TestRegistryCompleteness:
    def test_every_concrete_model_is_sampled(self):
        concrete = _concrete_subclasses(PathLossModel)
        assert concrete == set(PATH_LOSS_SAMPLES), (
            "every concrete PathLossModel needs a sample instance in "
            "PATH_LOSS_SAMPLES so the bit-identity suite covers it"
        )

    def test_every_concrete_model_overrides_batch(self):
        for cls in _concrete_subclasses(PathLossModel):
            assert "path_loss_db_batch" in cls.__dict__, (
                f"{cls.__name__} must implement path_loss_db_batch itself "
                "(no silent scalar fallback)"
            )

    def test_every_concrete_antenna_is_sampled(self):
        concrete = _concrete_subclasses(Antenna)
        assert concrete == set(ANTENNA_SAMPLES), (
            "every concrete Antenna needs a sample instance in "
            "ANTENNA_SAMPLES so the gains_towards identity suite covers it"
        )

    def test_known_antennas_override_batched_gains(self):
        # The base-class loop is identical by construction; the two
        # shipped patterns both override it and must stay pinned.
        for cls in (OmniAntenna, SectorAntenna):
            assert "gains_towards" in cls.__dict__


# ---------------------------------------------------------------------------
# Shadowing


class TestShadowingBatchIdentity:
    @given(
        sigma=st.sampled_from([0.0, 3.0, 7.0]),
        seed=st.integers(min_value=0, max_value=2**31),
        links=st.lists(
            st.tuples(coordinate, coordinate, coordinate, coordinate),
            min_size=1,
            max_size=32,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_scalar(self, sigma, seed, links):
        sh = LogNormalShadowing(sigma_db=sigma, seed=seed)
        ax, ay, bx, by = (np.array(v) for v in zip(*links))
        batch = sh.shadowing_db_batch(ax, ay, bx, by)
        assert list(batch) == [sh.shadowing_db(*link) for link in links]

    @given(
        links=st.lists(
            st.tuples(coordinate, coordinate, coordinate, coordinate),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_swap_symmetry(self, links):
        sh = LogNormalShadowing(sigma_db=7.0, seed=2017)
        ax, ay, bx, by = (np.array(v) for v in zip(*links))
        assert np.array_equal(
            sh.shadowing_db_batch(ax, ay, bx, by),
            sh.shadowing_db_batch(bx, by, ax, ay),
        )

    def test_same_point_and_negative_zero(self):
        sh = LogNormalShadowing(sigma_db=7.0, seed=2017)
        links = [
            (3.0, 4.0, 3.0, 4.0),  # zero-distance link
            (0.0, 0.0, 0.0, 0.0),
            (-0.0, 0.0, 0.0, 0.0),  # -0.0 formats as "-0.0": distinct key
            (0.0, -0.0, 0.0, 0.0),
        ]
        ax, ay, bx, by = (np.array(v) for v in zip(*links))
        batch = sh.shadowing_db_batch(ax, ay, bx, by)
        assert list(batch) == [sh.shadowing_db(*link) for link in links]

    def test_sigma_zero_is_exact_zero(self):
        sh = LogNormalShadowing(sigma_db=0.0, seed=5)
        batch = sh.shadowing_db_batch(
            np.array([1.0, 2.0]), np.array([0.0, 0.0]),
            np.array([3.0, 4.0]), np.array([0.0, 0.0]),
        )
        assert list(batch) == [0.0, 0.0]
        assert sh.shadowing_db(1.0, 0.0, 3.0, 0.0) == 0.0


class TestKeyQuantizationContract:
    """The ``:.1f`` key grid is pinned, golden-digest-bearing behaviour."""

    SH = LogNormalShadowing(sigma_db=7.0, seed=2017)
    #: Golden values: regenerate ONLY on a deliberate, digest-breaking
    #: key-format change (and say so loudly in the changelog).
    GOLDEN_SHARED = 0.04565141539307107
    GOLDEN_NEXT_CELL = -4.3623881085026985

    def test_links_within_a_cell_share_a_draw(self):
        # 12.31 and 12.33 both format to "12.3"; 5.0 and 5.04 to "5.0".
        a = self.SH.shadowing_db(12.31, 5.0, 100.0, 50.0)
        b = self.SH.shadowing_db(12.33, 5.04, 100.0, 50.0)
        assert a == b == self.GOLDEN_SHARED

    def test_cell_edge_redraws(self):
        # 12.37 formats to "12.4": one grid step, a fresh draw.
        assert self.SH.shadowing_db(12.37, 5.0, 100.0, 50.0) == self.GOLDEN_NEXT_CELL

    def test_reciprocity_golden(self):
        assert self.SH.shadowing_db(100.0, 50.0, 12.31, 5.0) == self.GOLDEN_SHARED

    def test_endpoint_tag_bytes(self):
        assert LogNormalShadowing.endpoint_tag(12.31, 5.04) == b"12.3,5.0"
        assert LogNormalShadowing.endpoint_tag(-0.04, 0.0) == b"-0.0,0.0"
        # Round-half-even at the cell edge (.1f uses banker's rounding on
        # the underlying binary value).
        assert LogNormalShadowing.endpoint_tag(12.25, 12.35) == b"12.2,12.3"

    def test_batch_reproduces_goldens(self):
        batch = self.SH.shadowing_db_batch(
            np.array([12.31, 12.33, 12.37]),
            np.array([5.0, 5.04, 5.0]),
            np.array([100.0, 100.0, 100.0]),
            np.array([50.0, 50.0, 50.0]),
        )
        assert list(batch) == [
            self.GOLDEN_SHARED,
            self.GOLDEN_SHARED,
            self.GOLDEN_NEXT_CELL,
        ]


# ---------------------------------------------------------------------------
# Antennas


class TestAntennaBatchIdentity:
    @pytest.mark.parametrize(
        "antenna", ANTENNA_SAMPLES.values(), ids=lambda a: type(a).__name__
    )
    @given(
        origin=st.tuples(coordinate, coordinate),
        points=st.lists(
            st.tuples(coordinate, coordinate), min_size=1, max_size=32
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_gains_towards_equals_scalar(self, antenna, origin, points):
        fx, fy = origin
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        batch = antenna.gains_towards(fx, fy, xs, ys)
        assert list(batch) == [
            antenna.gain_towards(fx, fy, x, y) for x, y in points
        ]

    def test_sector_wrap_branches(self):
        # Bearings that land exactly on the wrap boundaries and the
        # front/back clip, for a few boresights including negative ones.
        for boresight in (-120.0, 0.0, 90.0, 359.0):
            antenna = SectorAntenna(boresight_deg=boresight)
            xs, ys = [], []
            for deg in (-180.0, -179.9, -60.0, 0.0, 59.9, 60.0, 180.0, 300.0):
                rad = math.radians(boresight + deg)
                xs.append(1000.0 * math.cos(rad))
                ys.append(1000.0 * math.sin(rad))
            batch = antenna.gains_towards(0.0, 0.0, np.array(xs), np.array(ys))
            assert list(batch) == [
                antenna.gain_towards(0.0, 0.0, x, y) for x, y in zip(xs, ys)
            ]


# ---------------------------------------------------------------------------
# Gain-matrix cache


def _toy_topology(n_aps=7, clients_per_ap=5, area_m=1500.0):
    rng = np.random.default_rng(2017)
    aps, clients = [], []
    for ap_id in range(n_aps):
        x, y = rng.uniform(0.0, area_m, 2)
        aps.append(AccessPointSite(ap_id=ap_id, x=float(x), y=float(y)))
        for k in range(clients_per_ap):
            cx, cy = rng.uniform(0.0, area_m, 2)
            clients.append(
                ClientSite(
                    client_id=ap_id * clients_per_ap + k,
                    x=float(cx),
                    y=float(cy),
                    ap_id=ap_id,
                )
            )
    return Topology(aps=aps, clients=clients, area_m=area_m)


def _build_cache(fill_mode, topology, shadowing=True, antennas=True, cull=135.0):
    channel = CompositeChannel(
        UrbanHataPathLoss(),
        LogNormalShadowing(sigma_db=7.0, seed=2017) if shadowing else None,
    )
    ap_antennas = (
        {
            ap.ap_id: SectorAntenna(boresight_deg=float((37 * ap.ap_id) % 360))
            for ap in topology.aps
        }
        if antennas
        else None
    )
    return GainMatrixCache(
        channel,
        topology.aps,
        topology.clients,
        ap_antennas=ap_antennas,
        cull_loss_db=cull,
        fill_mode=fill_mode,
    )


class TestGainMatrixCacheBatchIdentity:
    @pytest.mark.parametrize("shadowing", [True, False])
    @pytest.mark.parametrize("antennas", [True, False])
    def test_matrix_identical(self, shadowing, antennas):
        topology = _toy_topology()
        batched = _build_cache(FILL_BATCHED, topology, shadowing, antennas)
        scalar = _build_cache(FILL_SCALAR, topology, shadowing, antennas)
        assert np.array_equal(batched.matrix(), scalar.matrix())

    def test_multi_chunk_fill_identical(self):
        # 40 APs x 450 clients = 18000 links > _CHUNK_LINKS: the batched
        # fill must split into multiple chunks and still match exactly.
        topology = _toy_topology(n_aps=40, clients_per_ap=12, area_m=4000.0)
        batched = _build_cache(FILL_BATCHED, topology, antennas=False)
        scalar = _build_cache(FILL_SCALAR, topology, antennas=False)
        assert np.array_equal(batched.matrix(), scalar.matrix())

    def test_lazy_row_paths_identical(self):
        topology = _toy_topology()
        batched = _build_cache(FILL_BATCHED, topology)
        scalar = _build_cache(FILL_SCALAR, topology)
        cid = topology.clients[3].client_id
        ap_id = topology.aps[2].ap_id
        assert batched.loss_db(cid, ap_id) == scalar.loss_db(cid, ap_id)
        some = [c.client_id for c in topology.clients[::3]]
        assert np.array_equal(batched.rows(some), scalar.rows(some))

    def test_prefill_subset_then_matrix(self):
        topology = _toy_topology()
        batched = _build_cache(FILL_BATCHED, topology)
        scalar = _build_cache(FILL_SCALAR, topology)
        batched.prefill([c.client_id for c in topology.clients[:8]])
        scalar.prefill([c.client_id for c in topology.clients[:8]])
        assert np.array_equal(batched.matrix(), scalar.matrix())

    def test_invalidate_refill_identical(self):
        topology = _toy_topology()
        batched = _build_cache(FILL_BATCHED, topology)
        scalar = _build_cache(FILL_SCALAR, topology)
        batched.matrix(), scalar.matrix()
        moved = topology.clients[4].client_id
        batched.invalidate_client(moved)
        scalar.invalidate_client(moved)
        assert np.array_equal(batched.matrix(), scalar.matrix())

    def test_invalid_fill_mode_rejected(self):
        topology = _toy_topology(n_aps=1, clients_per_ap=1)
        with pytest.raises(ValueError):
            _build_cache("simd", topology)

    def test_cull_boundary_is_strict(self):
        # Culling compares with strict ">": a link whose loss EQUALS the
        # horizon stays live; one ulp below the loss, it is culled.  The
        # batched fill must not perturb the stored loss (shared golden
        # digests depend on the boundary landing identically).
        topology = _toy_topology()
        cache = _build_cache(FILL_BATCHED, topology, cull=None)
        cid = topology.clients[0].client_id
        ap_id = topology.aps[0].ap_id
        loss = cache.loss_db(cid, ap_id)
        at = _build_cache(FILL_BATCHED, topology, cull=loss)
        assert at.loss_db(cid, ap_id) == loss
        assert not at.is_culled(cid, ap_id)
        below = _build_cache(
            FILL_BATCHED, topology, cull=float(np.nextafter(loss, -np.inf))
        )
        assert below.is_culled(cid, ap_id)


class TestSimulatorGainFill:
    def test_network_builds_identical_link_tables(self):
        topology = _toy_topology(n_aps=5, clients_per_ap=4)

        def build(gain_fill):
            return LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=CompositeChannel(
                    UrbanHataPathLoss(),
                    LogNormalShadowing(sigma_db=7.0, seed=2017),
                ),
                rngs=RngStreams(2017),
                cull_loss_db=135.0,
                gain_fill=gain_fill,
            )

        batched = build(FILL_BATCHED)
        scalar = build(FILL_SCALAR)
        assert batched.gain_prefill_s >= 0.0
        assert np.array_equal(batched._rx_dbm_mat, scalar._rx_dbm_mat)
        assert np.array_equal(batched._rx_w_mat, scalar._rx_w_mat)
        assert np.array_equal(batched._prach_mat, scalar._prach_mat)
        assert np.array_equal(
            batched.gain_cache.matrix(), scalar.gain_cache.matrix()
        )

    def test_epoch_results_identical(self):
        topology = _toy_topology(n_aps=4, clients_per_ap=3)

        def run(gain_fill):
            net = LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=CompositeChannel(
                    UrbanHataPathLoss(),
                    LogNormalShadowing(sigma_db=7.0, seed=2017),
                ),
                rngs=RngStreams(2017),
                cull_loss_db=135.0,
                gain_fill=gain_fill,
            )
            allowed = {
                ap.ap_id: set(range(net.grid.n_subchannels))
                for ap in topology.aps
            }
            demands = {c.client_id: float("inf") for c in topology.clients}
            result = net.run_epoch(0, allowed, demands)
            return sorted(result.served_bits.items())

        assert run(FILL_BATCHED) == run(FILL_SCALAR)

    def test_invalid_gain_fill_rejected(self):
        topology = _toy_topology(n_aps=1, clients_per_ap=1)
        with pytest.raises(ValueError):
            LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=CompositeChannel(UrbanHataPathLoss()),
                rngs=RngStreams(1),
                gain_fill="simd",
            )
