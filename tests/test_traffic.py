"""Unit tests for traffic models and flow tracking."""

import numpy as np
import pytest

from repro.sim.topology import grid_topology
from repro.traffic.backlogged import saturated_demand_fn, saturated_demands
from repro.traffic.flows import Flow, FlowTracker
from repro.traffic.web import (
    WebWorkloadConfig,
    generate_web_sessions,
    offered_load_bps,
)


class TestBacklogged:
    def test_all_clients_infinite(self):
        topo = grid_topology(2, 3, 500.0)
        demands = saturated_demands(topo)
        assert len(demands) == 12
        assert all(v == float("inf") for v in demands.values())

    def test_demand_fn_returns_fresh_dict(self):
        topo = grid_topology(1, 2, 500.0)
        fn = saturated_demand_fn(topo)
        first = fn(0)
        first[0] = 0.0
        assert fn(1)[0] == float("inf")


class TestWebWorkload:
    def test_every_client_browses(self):
        rng = np.random.default_rng(1)
        pages = generate_web_sessions([1, 2, 3], 60.0, rng)
        assert {p.client_id for p in pages} == {1, 2, 3}

    def test_arrivals_sorted_and_bounded(self):
        rng = np.random.default_rng(2)
        pages = generate_web_sessions([1, 2], 30.0, rng)
        times = [p.arrival_s for p in pages]
        assert times == sorted(times)
        assert all(0.0 <= t < 30.0 for t in times)

    def test_page_sizes_heavy_tailed(self):
        rng = np.random.default_rng(3)
        config = WebWorkloadConfig()
        sizes = [config.draw_page_bytes(rng)[0] for _ in range(500)]
        assert np.median(sizes) < np.mean(sizes)  # Right-skew.

    def test_median_page_size_realistic(self):
        rng = np.random.default_rng(4)
        config = WebWorkloadConfig()
        sizes = [config.draw_page_bytes(rng)[0] for _ in range(1000)]
        assert 50e3 < np.median(sizes) < 2e6  # Hundreds of kB.

    def test_think_time_mean(self):
        rng = np.random.default_rng(5)
        config = WebWorkloadConfig()
        thinks = [config.draw_think_s(rng) for _ in range(2000)]
        # lognormal(ln 6, 1) -> mean = 6 * exp(0.5) ~ 9.9 s.
        assert np.mean(thinks) == pytest.approx(9.9, rel=0.2)

    def test_object_count_clipped(self):
        rng = np.random.default_rng(6)
        config = WebWorkloadConfig(max_objects=10)
        for _ in range(200):
            _, n = config.draw_page_bytes(rng)
            assert 1 <= n <= 10

    def test_offered_load(self):
        rng = np.random.default_rng(7)
        pages = generate_web_sessions([1], 60.0, rng)
        load = offered_load_bps(pages, 60.0)
        assert load == pytest.approx(sum(p.total_bytes for p in pages) * 8 / 60.0)

    def test_duration_validated(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            generate_web_sessions([1], 0.0, rng)


class TestFlow:
    def test_initial_remaining(self):
        flow = Flow(client_id=1, arrival_s=0.0, size_bits=1000.0)
        assert flow.remaining_bits == 1000.0
        assert flow.completion_time_s is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(client_id=1, arrival_s=0.0, size_bits=0.0)


class TestFlowTracker:
    def test_fifo_completion(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=100.0))
        tracker.arrive(Flow(client_id=1, arrival_s=1.0, size_bits=100.0))
        done = tracker.serve(1, 100.0, start_s=2.0, end_s=2.0)
        assert len(done) == 1
        assert done[0].arrival_s == 0.0

    def test_partial_service(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=100.0))
        assert tracker.serve(1, 40.0, 1.0, 1.0) == []
        assert tracker.queued_bits(1) == 60.0
        done = tracker.serve(1, 60.0, 2.0, 2.0)
        assert done[0].completed_s == 2.0
        assert done[0].completion_time_s == 2.0

    def test_interpolated_completion_within_epoch(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=100.0))
        done = tracker.serve(1, 400.0, start_s=0.0, end_s=1.0)
        # The flow was 1/4 of the delivered bits: completes at t=0.25.
        assert done[0].completed_s == pytest.approx(0.25)

    def test_one_delivery_finishes_multiple_flows(self):
        tracker = FlowTracker()
        for i in range(3):
            tracker.arrive(Flow(client_id=1, arrival_s=float(i), size_bits=10.0))
        done = tracker.serve(1, 30.0, 5.0, 6.0)
        assert len(done) == 3
        assert tracker.in_flight() == 0

    def test_completion_times_accumulate(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=1.0, size_bits=10.0))
        tracker.serve(1, 10.0, 3.0, 3.0)
        assert tracker.completion_times() == [2.0]

    def test_active_clients(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=10.0))
        tracker.arrive(Flow(client_id=2, arrival_s=0.0, size_bits=10.0))
        tracker.serve(2, 10.0, 1.0, 1.0)
        assert tracker.active_clients() == [1]

    def test_total_queued(self):
        tracker = FlowTracker()
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=10.0))
        tracker.arrive(Flow(client_id=2, arrival_s=0.0, size_bits=20.0))
        assert tracker.total_queued_bits() == 30.0

    def test_serving_unknown_client_is_noop(self):
        tracker = FlowTracker()
        assert tracker.serve(9, 100.0, 0.0, 1.0) == []

    def test_validation(self):
        tracker = FlowTracker()
        with pytest.raises(ValueError):
            tracker.serve(1, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            tracker.serve(1, 1.0, 2.0, 1.0)
