"""Divergence replay: lockstep restore, mutation injection, bisection."""

import pytest

from repro.experiments.convergence import ConvergenceRun
from repro.experiments.db_outage import DbOutageRun
from repro.sim.checkpoint import CheckpointError, Snapshot
from repro.sim.replay import apply_mutation, load_driver, replay_diff


@pytest.fixture(scope="module")
def outage_snapshot(tmp_path_factory):
    """A mid-run snapshot of a small withdraw-scenario outage run."""
    directory = tmp_path_factory.mktemp("replay")
    run = DbOutageRun(
        seed=5,
        outages=((30.0, 25.0),),
        timeout_prob=0.05,
        withdraw_in_outage=0,
        tail_s=80.0,
    )
    run.run_to_boot()
    return run.save_checkpoint(str(directory))


class TestReplayDiff:
    def test_identical_restores_never_diverge(self, outage_snapshot):
        report = replay_diff(outage_snapshot, max_events=400)
        assert not report.diverged
        assert report.baseline == []
        assert report.events_replayed > 0

    def test_mutation_is_pinpointed_to_first_event(self, outage_snapshot):
        # Stretching the poll interval makes run B schedule its next poll
        # later; the first diverging event must be a concrete Event with
        # callback context, not just "hashes differ somewhere".
        report = replay_diff(
            outage_snapshot,
            mutations=["selector.poll_interval_s=9.0"],
            max_events=4000,
        )
        assert "selector" in report.baseline
        assert report.diverged
        assert report.event_index >= 1
        assert report.event_a is not None and "Event(" in report.event_a
        assert "cb=" in report.event_a

    def test_state_spread_found_through_identical_events(self, outage_snapshot):
        # Mutating the remembered held channel changes nothing about the
        # event heap until _restore_held fires; the bisection must find
        # that event even though both runs fire identical events there.
        report = replay_diff(
            outage_snapshot,
            mutations=["driver.held=41"],
            stride=64,
            max_events=20000,
        )
        assert report.baseline == ["driver"]
        assert report.diverged
        assert report.event_a == report.event_b  # same event, new state split
        assert "_restore_held" in report.event_a
        assert "database" in report.subsystems

    def test_describe_mentions_the_verdict(self, outage_snapshot):
        report = replay_diff(outage_snapshot, max_events=50)
        assert "no divergence" in report.describe()


class TestMutationSpecs:
    def test_bad_specs_are_rejected(self, outage_snapshot):
        snapshot = Snapshot.load(outage_snapshot)
        with pytest.raises(CheckpointError, match="no '=value'"):
            apply_mutation(snapshot, "driver.held")
        with pytest.raises(CheckpointError, match="subsystem.key"):
            apply_mutation(snapshot, "driver=1")
        with pytest.raises(CheckpointError, match="no subsystem"):
            apply_mutation(snapshot, "nonsense.held=1")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            apply_mutation(snapshot, "driver.held=nope")
        with pytest.raises(CheckpointError, match="no field"):
            apply_mutation(snapshot, "driver.missing_field=1")

    def test_mutation_edits_serialized_state(self, outage_snapshot):
        snapshot = Snapshot.load(outage_snapshot)
        apply_mutation(snapshot, "driver.booted=false")
        assert snapshot.subsystems["driver"]["booted"] is False


class TestDriverResolution:
    def test_unknown_driver_is_rejected(self, outage_snapshot):
        snapshot = Snapshot.load(outage_snapshot)
        snapshot.meta["driver"] = "not-a-driver"
        with pytest.raises(CheckpointError, match="unknown driver"):
            load_driver(snapshot)

    def test_epoch_snapshots_are_rejected(self, tmp_path):
        # Replication-granular drivers have no event heap to lockstep.
        run = ConvergenceRun(n_nodes=8, fading_p=0.3, replications=3, seed=17)
        run.step_replication()
        path = run.save_checkpoint(str(tmp_path))
        with pytest.raises(CheckpointError, match="no\\s+event heap"):
            replay_diff(path)
