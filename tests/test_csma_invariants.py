"""Invariant tests on the DCF machinery.

The central CSMA safety property: two nodes that can hear each other only
ever start overlapping transmissions within the carrier-sense detection
window of one another (the same-slot collision of real DCF).  Outside that
window, carrier sense must have prevented the overlap.
"""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.wifi.csma import CsmaNode, DcfParams, Station, WifiMedium
from repro.wifi.frames import FrameTimings
from repro.wifi.rates import WIFI_MCS_TABLE


def _mutually_sensing_world(n_aps=3, seed=0, rts_cts=False):
    """All APs hear each other; RTS/CTS off by default so data frames are
    the *initial* frames of each TXOP (carrier sense applies to them
    directly -- with RTS/CTS on, two RTS exchanges that start in the same
    slot legitimately launch parallel, capture-separated TXOPs)."""
    sim = Simulator()
    params = DcfParams(
        timings=FrameTimings(bandwidth_hz=20e6), rts_cts=rts_cts
    )

    def loss(a, b):
        a_is_ap = a.station_id < 100
        b_is_ap = b.station_id < 100
        if a_is_ap and b_is_ap:
            return 60.0  # APs all hear each other clearly.
        if {a.station_id % 100, b.station_id % 100} == {a.station_id % 100}:
            pass
        # AP to its own client strong; everything else moderate.
        if abs(a.station_id - b.station_id) == 100:
            return 70.0
        return 95.0

    medium = WifiMedium(sim, loss, 20e6, params)
    nodes = []
    for i in range(n_aps):
        ap = Station(i, float(i * 10), 0.0, 20.0)
        client = Station(100 + i, float(i * 10), 50.0, 20.0)
        medium.add_station(ap)
        medium.add_station(client)
    for i in range(n_aps):
        node = CsmaNode(
            sim, medium, medium.station(i), params,
            np.random.default_rng(seed + i),
        )
        node.add_destination(100 + i, WIFI_MCS_TABLE[4])
        node.enqueue(100 + i, 1e9)
        nodes.append(node)
    return sim, medium, nodes, params


class TestCsmaSafety:
    def test_overlaps_only_within_detection_window(self):
        sim, medium, nodes, params = _mutually_sensing_world()
        sim.run(until=1.0)
        # Examine the full transmission history of AP-originated frames.
        history = [t for t in medium._history if t.src < 100]
        window = params.cs_delay_s + params.timings.slot_s
        for i, a in enumerate(history):
            for b in history[i + 1:]:
                if a.src == b.src:
                    continue
                overlap = min(a.end, b.end) - max(a.start, b.start)
                if overlap <= 0.0:
                    continue
                # Any overlap must stem from near-simultaneous starts.
                assert abs(a.start - b.start) <= window + 1e-9, (
                    f"{a.kind}@{a.start:.6f} vs {b.kind}@{b.start:.6f} "
                    f"overlap {overlap * 1e6:.1f} us outside the CS window"
                )

    def test_airtime_is_shared(self):
        sim, medium, nodes, params = _mutually_sensing_world()
        sim.run(until=2.0)
        delivered = [
            sum(s.bits_delivered for s in node.stats.values()) for node in nodes
        ]
        assert all(bits > 0.0 for bits in delivered)
        # Rough fairness among identical contenders.
        assert max(delivered) < 3.0 * min(delivered)

    def test_medium_never_reports_negative_time(self):
        sim, medium, nodes, params = _mutually_sensing_world()
        sim.run(until=0.5)
        for tx in medium._history:
            assert tx.end >= tx.start


class TestScenarioDeterminism:
    def test_build_scenario_reproducible(self):
        from repro.experiments.common import build_scenario

        a = build_scenario(seed=9, n_aps=4, clients_per_ap=3)
        b = build_scenario(seed=9, n_aps=4, clients_per_ap=3)
        assert [(c.x, c.y, c.ap_id) for c in a.topology.clients] == [
            (c.x, c.y, c.ap_id) for c in b.topology.clients
        ]

    def test_different_seeds_differ(self):
        from repro.experiments.common import build_scenario

        a = build_scenario(seed=9, n_aps=4, clients_per_ap=3)
        b = build_scenario(seed=10, n_aps=4, clients_per_ap=3)
        assert [(c.x, c.y) for c in a.topology.clients] != [
            (c.x, c.y) for c in b.topology.clients
        ]

    def test_full_scale_env_flag(self, monkeypatch):
        from repro.experiments import common

        for value in ("1", "true", "TRUE", "Yes", "on", " yes "):
            monkeypatch.setenv("REPRO_FULL", value)
            assert common.full_scale(), value
        for value in ("0", "false", "no", "off", "", "2"):
            monkeypatch.setenv("REPRO_FULL", value)
            assert not common.full_scale(), value
        monkeypatch.delenv("REPRO_FULL")
        assert not common.full_scale()
