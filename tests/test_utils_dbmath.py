"""Unit tests for repro.utils.dbmath."""

import math

import pytest

from repro.utils.dbmath import (
    THERMAL_NOISE_DBM_PER_HZ,
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    thermal_noise_dbm,
    watt_to_dbm,
    wireless_sum_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_negative_db_divides(self):
        assert db_to_linear(-10.0) == pytest.approx(0.1)

    def test_roundtrip(self):
        for value in (0.001, 1.0, 42.0, 1e6):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)


class TestDbmWatt:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        for dbm in (-120.0, -30.0, 0.0, 23.0, 46.0):
            assert watt_to_dbm(dbm_to_watt(dbm)) == pytest.approx(dbm)

    def test_watt_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)


class TestWirelessSum:
    def test_empty_sum_is_minus_infinity(self):
        assert wireless_sum_dbm([]) == float("-inf")

    def test_single_value_passthrough(self):
        assert wireless_sum_dbm([-90.0]) == pytest.approx(-90.0)

    def test_two_equal_signals_add_three_db(self):
        assert wireless_sum_dbm([-90.0, -90.0]) == pytest.approx(-87.0, abs=0.02)

    def test_dominant_signal_wins(self):
        total = wireless_sum_dbm([-60.0, -100.0])
        assert total == pytest.approx(-60.0, abs=0.01)

    def test_sum_is_commutative(self):
        a = wireless_sum_dbm([-80.0, -85.0, -90.0])
        b = wireless_sum_dbm([-90.0, -80.0, -85.0])
        assert a == pytest.approx(b)


class TestThermalNoise:
    def test_one_hertz_is_ktb(self):
        assert thermal_noise_dbm(1.0) == pytest.approx(THERMAL_NOISE_DBM_PER_HZ)

    def test_20mhz_wifi_noise_floor(self):
        # Classic figure: -174 + 73 = -101 dBm over 20 MHz.
        assert thermal_noise_dbm(20e6) == pytest.approx(-100.99, abs=0.05)

    def test_noise_figure_adds_directly(self):
        base = thermal_noise_dbm(5e6)
        assert thermal_noise_dbm(5e6, noise_figure_db=7.0) == pytest.approx(base + 7.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)
