"""Cross-shard telemetry plane: digest neutrality + exactly-once merging.

The supervision suite (tests/test_shard_supervision.py) proves the shard
engine recovers bit-identically; this suite proves the telemetry plane
rides along without disturbing that:

* a traced supervised run -- including a chaos kill with checkpoint
  respawn and journal replay -- produces the same per-epoch digests as
  the untraced run (telemetry is extra wire data, never sim input);
* merged ``shard<k>.`` metric totals account for every epoch exactly
  once despite the replay, and their per-shard sums match an inline
  unsharded run of the same scenario;
* the degrade/kill path records ``shard.telemetry_dropped`` when a dead
  worker's buffer is unrecoverable, and salvages it when the worker is
  still answering (malformed-reply recovery);
* with telemetry off, the barrier wire format stays the pre-telemetry
  4-tuple -- byte-identical payloads, no conditional fields.
"""

import multiprocessing as mp

import pytest

from repro.lte.network import BACKEND_INCREMENTAL
from repro.obs import Telemetry, activated, disable
from repro.obs.validate import validate_chrome_trace
from repro.sim.shard import ChaosEvent, ChaosPolicy

from tests.test_lte_network_incremental import CULL_DB, churn_run, make_net
from tests.test_shard_supervision import (
    N_EPOCHS,
    PROC_TIMEOUT_S,
    make_supervised,
    supervised_digests,
)
from tests.test_sim_shard import epoch_digest, make_sharded

HAVE_FORK = "fork" in mp.get_all_start_methods()

KILL_EPOCH = 3


def teardown_module(module):
    disable()


def kill_chaos():
    return ChaosPolicy(events=(ChaosEvent("kill", KILL_EPOCH, 1),))


def run_supervised(tel, chaos=None, mode="inline", **config_kwargs):
    """Digests + supervisor stats for one supervised churn run."""
    if mode == "process":
        config_kwargs.setdefault("phase_timeout_s", PROC_TIMEOUT_S)
    else:
        config_kwargs.setdefault("phase_timeout_s", None)
    ctx = activated(tel) if tel is not None else None
    if ctx is not None:
        ctx.__enter__()
    try:
        net = make_supervised(2, mode=mode, chaos=chaos, **config_kwargs)
        supervisor = net.supervisor
        digests = supervised_digests(net)
        return digests, dict(supervisor.stats)
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)


class TestDigestNeutrality:
    def test_traced_kill_run_digests_equal_untraced(self):
        untraced, _ = run_supervised(None, chaos=kill_chaos())
        traced, stats = run_supervised(
            Telemetry(trace=True), chaos=kill_chaos()
        )
        assert traced == untraced
        assert stats["restarts"] == 1

    def test_metrics_only_telemetry_is_also_neutral(self):
        untraced, _ = run_supervised(None, chaos=kill_chaos())
        traced, _ = run_supervised(Telemetry(), chaos=kill_chaos())
        assert traced == untraced


class TestMergedTimeline:
    @pytest.fixture(scope="class")
    def traced(self):
        tel = Telemetry(trace=True)
        digests, stats = run_supervised(tel, chaos=kill_chaos())
        return tel, digests, stats

    def test_recovery_spans_on_supervisor_track(self, traced):
        tel, _, _ = traced
        by_name = {r.name: r for r in tel.tracer.records}
        respawn = by_name["shard.respawn"]
        assert respawn.args["of"] == 1
        assert respawn.args["kind"] == "crash"
        assert respawn.wall_dur_ns > 0
        replay = by_name["shard.replay"]
        assert replay.args["of"] == 1
        assert replay.args["ops"] == stats_ops(traced)
        # Supervisor spans carry no "shard" arg: they stay on the parent
        # track instead of being hoisted onto a shard track.
        assert "shard" not in respawn.args
        assert "shard" in by_name["lte.epoch"].args

    def test_barrier_phase_spans_per_epoch(self, traced):
        tel, _, _ = traced
        partials = [
            r for r in tel.tracer.records if r.name == "shard.barrier.partial"
        ]
        commits = [
            r for r in tel.tracer.records if r.name == "shard.barrier.commit"
        ]
        assert len(partials) == N_EPOCHS == len(commits)
        assert {r.args["epoch"] for r in commits} == set(range(N_EPOCHS))

    def test_every_shard_contributes_spans(self, traced):
        tel, _, _ = traced
        shards = {
            r.args["shard"]
            for r in tel.tracer.records
            if isinstance(r.args.get("shard"), int)
        }
        assert shards == {0, 1}

    def test_exactly_once_epoch_accounting_across_replay(self, traced):
        tel, _, stats = traced
        assert stats["replayed_ops"] > 0  # the replay really happened
        counters = tel.registry.snapshot()["counters"]
        for shard in (0, 1):
            assert counters[f"shard{shard}.lte.epochs"] == float(N_EPOCHS)

    def test_supervision_gauges_present(self, traced):
        tel, _, _ = traced
        gauges = tel.registry.snapshot()["gauges"]
        assert "shard.journal_depth" in gauges
        assert "shard.checkpoint_epoch" in gauges
        assert "shard.checkpoint_refreshes" in gauges
        assert "shard.checkpoint_age_epochs" in gauges

    def test_chrome_export_validates_with_shard_tracks(self, traced):
        tel, _, _ = traced
        doc = tel.tracer.chrome_trace()
        assert validate_chrome_trace(doc) > 0
        pids = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "process_name"
        }
        assert pids == {"shard0", "shard1"}


def stats_ops(traced):
    _, _, stats = traced
    return stats["max_replay_depth"]


class TestMergedTotalsMatchInline:
    def test_per_shard_sums_equal_unsharded_run(self):
        tel = Telemetry()
        with activated(tel):
            net = make_supervised(2)
            supervised_digests(net)
        merged = tel.registry.snapshot()["counters"]
        tel_inline = Telemetry()
        with activated(tel_inline):
            churn_run(make_net(BACKEND_INCREMENTAL, CULL_DB), N_EPOCHS)
        inline = tel_inline.registry.snapshot()["counters"]
        assert inline, "inline run recorded no counters"
        for name, total in inline.items():
            if name == "lte.epochs":
                # Ticks once per run_epoch per *worker*: every shard sees
                # every epoch rather than a partition of them.
                for k in (0, 1):
                    assert merged[f"shard{k}.{name}"] == total
                continue
            shard_sum = sum(
                merged.get(f"shard{k}.{name}", 0.0) for k in (0, 1)
            )
            if float(total).is_integer() and float(shard_sum).is_integer():
                assert shard_sum == total, name
            else:
                # Float accumulation order differs across shards; the
                # totals agree to rounding, not bit-for-bit.
                assert shard_sum == pytest.approx(total, rel=1e-9), name


class TestSalvageAndDrop:
    def test_kill_drops_the_dead_workers_buffer(self):
        tel = Telemetry(trace=True)
        _, stats = run_supervised(tel, chaos=kill_chaos())
        assert stats["telemetry_dropped"] == 1
        assert stats["telemetry_salvaged"] == 0
        counters = tel.registry.snapshot()["counters"]
        assert counters["shard.telemetry_dropped"] == 1.0

    def test_degrade_path_also_accounts_for_the_buffer(self):
        from repro.sim.shard import ShardDegradedWarning

        tel = Telemetry(trace=True)
        with pytest.warns(ShardDegradedWarning):
            _, stats = run_supervised(
                tel, chaos=kill_chaos(), retry_budget=0
            )
        assert stats["degraded"] == 1
        assert stats["telemetry_dropped"] + stats["telemetry_salvaged"] == 1

    def test_untraced_runs_count_nothing(self):
        _, stats = run_supervised(None, chaos=kill_chaos())
        assert stats["telemetry_dropped"] == 0
        assert stats["telemetry_salvaged"] == 0

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_malformed_reply_recovery_salvages_the_buffer(self):
        tel = Telemetry(trace=True)
        chaos = ChaosPolicy(events=(ChaosEvent("malformed", KILL_EPOCH, 1),))
        digests, stats = run_supervised(tel, chaos=chaos, mode="process")
        untraced, _ = run_supervised(None, chaos=chaos, mode="process")
        assert digests == untraced
        assert stats["telemetry_salvaged"] == 1
        assert stats["telemetry_dropped"] == 0


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestProcessMode:
    def test_traced_process_kill_run_is_digest_neutral(self):
        untraced, _ = run_supervised(None, chaos=kill_chaos(), mode="process")
        tel = Telemetry(trace=True)
        traced, stats = run_supervised(
            tel, chaos=kill_chaos(), mode="process"
        )
        assert traced == untraced
        assert stats["restarts"] == 1
        names = {r.name for r in tel.tracer.records}
        assert {"shard.respawn", "shard.replay"} <= names
        shards = {
            r.args["shard"]
            for r in tel.tracer.records
            if isinstance(r.args.get("shard"), int)
        }
        assert shards == {0, 1}


class TestWireFormat:
    def test_disabled_telemetry_keeps_the_4_tuple_reply(self):
        net = make_sharded(2, mode="inline")
        try:
            assert net._worker_tel_cfg is None
            assert net._tel_merger is None
            worker = net.workers[0]
            assert worker._tel is None and worker._shipper is None
        finally:
            net.close()

    def test_enabled_telemetry_appends_the_payload_element(self):
        tel = Telemetry(trace=True)
        with activated(tel):
            net = make_sharded(2, mode="inline")
            try:
                assert net._worker_tel_cfg == {"trace": True, "profile": False}
                digests = [
                    epoch_digest(r) for r in churn_run(net, 2)
                ]
                assert len(digests) == 2
            finally:
                net.close()
        # Workers buffered locally and shipped: the parent registry holds
        # only shard-prefixed names, never the workers' raw names.
        counters = tel.registry.snapshot()["counters"]
        assert counters
        assert all(name.startswith("shard") for name in counters)

    def test_inline_worker_outcome_arity_tracks_telemetry(self):
        import numpy as np

        net_off = make_sharded(2, mode="inline")
        tel = Telemetry(trace=True)
        with activated(tel):
            net_on = make_sharded(2, mode="inline")
        try:
            for net, want in ((net_off, 4), (net_on, 5)):
                worker = net.workers[0]
                from repro.sim.shard import _epoch_stream_states

                states = _epoch_stream_states(net.rngs)
                demands = {
                    c.client_id: 1e5 for c in net.topology.clients
                }
                allowed = {
                    ap.ap_id: set(range(net.grid.n_subchannels))
                    for ap in net.topology.aps
                }
                worker.begin_epoch(0, allowed, demands, states)
                partial = worker.read_partial()
                worker.commit_epoch(np.asarray(partial))
                outcome = worker.read_result()
                assert len(outcome) == want
                if want == 5:
                    payload = outcome[4]
                    assert payload["kind"] == "epoch"
                    assert payload["epoch"] == 0
        finally:
            net_off.close()
            net_on.close()
