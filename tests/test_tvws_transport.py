"""Unit tests for the fault-injectable PAWS transport layer."""

import pytest

from repro.sim.rng import RngStreams
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import (
    AvailableSpectrumRequest,
    DeviceDescriptor,
    ERROR_DATABASE_UNAVAILABLE,
    GeoLocation,
    PawsServer,
)
from repro.tvws.transport import (
    DirectTransport,
    FaultSpec,
    FaultyTransport,
    MalformedResponse,
    PawsTransport,
    RetryPolicy,
    RobustnessLog,
    TransportTimeout,
    as_transport,
)


def _server(**kwargs):
    return PawsServer(SpectrumDatabase(US_CHANNEL_PLAN), **kwargs)


def _request(t=0.0, serial="ap-1"):
    return AvailableSpectrumRequest(
        device=DeviceDescriptor(serial_number=serial),
        location=GeoLocation(x=0.0, y=0.0),
        request_time=t,
    )


def _faulty(spec, seed=7, server=None, log=None, clock=None):
    clock_state = {"now": 0.0}
    clock = clock or (lambda: clock_state["now"])
    transport = FaultyTransport(
        inner=DirectTransport(server or _server(), name="primary"),
        clock=clock,
        rng=RngStreams(seed).stream("transport-faults"),
        spec=spec,
        log=log,
        name="primary",
    )
    transport._clock_state = clock_state  # test-side handle to move time
    return transport


class TestFaultSpec:
    def test_probabilities_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            FaultSpec(timeout_prob=0.6, drop_prob=0.5)

    def test_empty_outage_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(outages=((10.0, 10.0),))

    def test_in_outage_half_open(self):
        spec = FaultSpec(outages=((10.0, 20.0),))
        assert not spec.in_outage(9.999)
        assert spec.in_outage(10.0)
        assert spec.in_outage(19.999)
        assert not spec.in_outage(20.0)


class TestDirectTransport:
    def test_passthrough_matches_server(self):
        server = _server()
        transport = DirectTransport(server)
        reply = transport.available_spectrum(_request())
        assert reply.latency_s == 0.0
        assert reply.response.channel_numbers() == (
            server.available_spectrum(_request()).channel_numbers()
        )

    def test_as_transport_coercion(self):
        server = _server()
        assert isinstance(as_transport(server), DirectTransport)
        direct = DirectTransport(server)
        assert as_transport(direct) is direct
        with pytest.raises(TypeError):
            as_transport(object())


class TestFaultInjection:
    def test_fault_free_is_transparent(self):
        transport = _faulty(FaultSpec(latency_s=0.0))
        for k in range(20):
            reply = transport.available_spectrum(_request(t=float(k)))
            assert reply.response.ok
        assert transport.fault_log == []

    def test_timeout_never_reaches_server(self):
        server = _server()
        transport = _faulty(FaultSpec(timeout_prob=1.0), server=server)
        with pytest.raises(TransportTimeout):
            transport.available_spectrum(_request(), timeout_s=0.5)
        # The request was lost on the wire: no server-side registration.
        assert "ap-1" not in server._registered

    def test_drop_has_server_side_effects(self):
        server = _server()
        transport = _faulty(FaultSpec(drop_prob=1.0), server=server)
        with pytest.raises(TransportTimeout):
            transport.available_spectrum(_request(), timeout_s=0.5)
        # The server processed the request; only the reply was lost.
        assert "ap-1" in server._registered

    def test_error_response_is_transient_code(self):
        transport = _faulty(FaultSpec(error_prob=1.0))
        reply = transport.available_spectrum(_request())
        assert reply.response.error_code == ERROR_DATABASE_UNAVAILABLE

    def test_malformed_raises(self):
        transport = _faulty(FaultSpec(malformed_prob=1.0))
        with pytest.raises(MalformedResponse):
            transport.available_spectrum(_request())

    def test_latency_spike_past_timeout_is_timeout(self):
        spec = FaultSpec(latency_s=0.02, latency_spike_prob=1.0, latency_spike_s=2.0)
        transport = _faulty(spec)
        with pytest.raises(TransportTimeout):
            transport.available_spectrum(_request(), timeout_s=0.5)

    def test_latency_spike_within_timeout_is_slow_reply(self):
        spec = FaultSpec(latency_s=0.02, latency_spike_prob=1.0, latency_spike_s=2.0)
        transport = _faulty(spec)
        reply = transport.available_spectrum(_request(), timeout_s=10.0)
        assert reply.response.ok
        assert reply.latency_s == pytest.approx(2.02)

    def test_outage_blocks_every_method(self):
        transport = _faulty(FaultSpec(outages=((5.0, 15.0),)))
        transport._clock_state["now"] = 10.0
        with pytest.raises(TransportTimeout):
            transport.init_device(DeviceDescriptor("ap-1"))
        with pytest.raises(TransportTimeout):
            transport.available_spectrum(_request(), timeout_s=0.5)
        with pytest.raises(TransportTimeout):
            transport.notify_spectrum_use(DeviceDescriptor("ap-1"), 14, 10.0)
        transport._clock_state["now"] = 15.0
        assert transport.available_spectrum(_request()).response.ok

    def test_fault_log_and_robustness_events(self):
        log = RobustnessLog()
        transport = _faulty(FaultSpec(timeout_prob=1.0), log=log)
        with pytest.raises(TransportTimeout):
            transport.available_spectrum(_request(), timeout_s=0.5)
        assert transport.fault_log == [(0.0, "getSpectrum", "timeout")]
        assert log.counts() == {"fault-injected": 1}

    def test_timeout_elapsed_burns_full_timeout(self):
        transport = _faulty(FaultSpec(timeout_prob=1.0))
        with pytest.raises(TransportTimeout) as excinfo:
            transport.available_spectrum(_request(), timeout_s=0.75)
        assert excinfo.value.elapsed_s == 0.75


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(
            timeout_prob=0.2, drop_prob=0.1, error_prob=0.1, malformed_prob=0.05
        )

        def run(seed):
            transport = _faulty(spec, seed=seed)
            kinds = []
            for k in range(50):
                try:
                    reply = transport.available_spectrum(
                        _request(t=float(k)), timeout_s=0.5
                    )
                    kinds.append(
                        "ok" if reply.response.ok else f"err{reply.response.error_code}"
                    )
                except TransportTimeout:
                    kinds.append("timeout")
                except MalformedResponse:
                    kinds.append("malformed")
            return kinds

        assert run(3) == run(3)
        assert run(3) != run(4)  # different stream, different schedule

    def test_exactly_two_draws_per_request(self):
        # The draw discipline is what keeps schedules aligned whatever
        # fault fires; consume the stream in lockstep and compare.
        spec = FaultSpec(timeout_prob=0.3, error_prob=0.2)
        transport = _faulty(spec, seed=11)
        shadow = RngStreams(11).stream("transport-faults")
        for k in range(30):
            shadow.random(), shadow.random()
            try:
                transport.available_spectrum(_request(t=float(k)), timeout_s=0.5)
            except TransportTimeout:
                pass
        # After N requests both streams sit at the same position.
        assert float(transport.rng.random()) == float(shadow.random())


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.25, backoff_factor=2.0, backoff_max_s=1.0, jitter_s=0.0
        )
        delays = [policy.backoff_delay(k, 0.0) for k in range(5)]
        assert delays == [0.25, 0.5, 1.0, 1.0, 1.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(jitter_s=0.1)
        assert policy.backoff_delay(0, 0.0) == pytest.approx(0.25)
        assert policy.backoff_delay(0, 0.999) < 0.25 + 0.1


class TestRobustnessLog:
    def test_counts_and_rows(self):
        log = RobustnessLog()
        log.record(1.0, "ap", "retry", "attempt 2")
        log.record(2.0, "ap", "retry", "attempt 3")
        log.record(3.0, "ap", "grace-entered", "outage")
        assert len(log) == 3
        assert log.counts() == {"retry": 2, "grace-entered": 1}
        rows = log.to_rows()
        assert rows[0] == {
            "time": 1.0, "source": "ap", "kind": "retry", "detail": "attempt 2",
        }

    def test_events_are_copies(self):
        log = RobustnessLog()
        log.record(1.0, "ap", "retry")
        log.events.clear()
        assert len(log) == 1


class TestInterface:
    def test_base_class_is_abstract(self):
        transport = PawsTransport()
        with pytest.raises(NotImplementedError):
            transport.init_device(DeviceDescriptor("x"))
        with pytest.raises(NotImplementedError):
            transport.available_spectrum(_request())
        with pytest.raises(NotImplementedError):
            transport.notify_spectrum_use(DeviceDescriptor("x"), 14, 0.0)
