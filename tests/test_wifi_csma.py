"""Unit tests for the CSMA/CA (DCF) machinery."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.wifi.csma import (
    CsmaNode,
    DcfParams,
    Station,
    Transmission,
    WifiMedium,
    mpdu_delivery_fraction,
)
from repro.wifi.frames import FrameTimings
from repro.wifi.rates import WIFI_MCS_TABLE


def _flat_loss(db):
    return lambda a, b: db


def _medium(sim, loss_db=80.0, bandwidth=20e6, **param_kwargs):
    params = DcfParams(timings=FrameTimings(bandwidth_hz=bandwidth), **param_kwargs)
    return WifiMedium(sim, _flat_loss(loss_db), bandwidth, params)


class TestMpduFraction:
    def test_full_delivery_at_operating_point(self):
        assert mpdu_delivery_fraction(20.0, 20.0) == 1.0
        assert mpdu_delivery_fraction(30.0, 20.0) == 1.0

    def test_total_loss_deep_below(self):
        assert mpdu_delivery_fraction(10.0, 20.0) == 0.0

    def test_linear_in_between(self):
        assert mpdu_delivery_fraction(17.0, 20.0) == pytest.approx(0.5)


class TestTransmission:
    def test_overlap_fraction_full(self):
        a = Transmission(src=0, dst=1, kind="data", start=0.0, end=1.0)
        b = Transmission(src=2, dst=3, kind="data", start=0.0, end=2.0)
        assert a.overlap_fraction(b) == 1.0

    def test_overlap_fraction_partial(self):
        a = Transmission(src=0, dst=1, kind="data", start=0.0, end=1.0)
        b = Transmission(src=2, dst=3, kind="data", start=0.5, end=2.0)
        assert a.overlap_fraction(b) == pytest.approx(0.5)

    def test_no_overlap(self):
        a = Transmission(src=0, dst=1, kind="data", start=0.0, end=1.0)
        b = Transmission(src=2, dst=3, kind="data", start=1.5, end=2.0)
        assert a.overlap_fraction(b) == 0.0


class TestMedium:
    def test_duplicate_station_rejected(self):
        sim = Simulator()
        medium = _medium(sim)
        medium.add_station(Station(0, 0, 0, 20.0))
        with pytest.raises(ValueError):
            medium.add_station(Station(0, 1, 1, 20.0))

    def test_rx_power(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        medium.add_station(Station(0, 0, 0, 20.0))
        medium.add_station(Station(1, 10, 0, 20.0))
        assert medium.rx_dbm(0, 1) == pytest.approx(-50.0)

    def test_hears_depends_on_threshold(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        medium.add_station(Station(0, 0, 0, 20.0))
        medium.add_station(Station(1, 10, 0, 20.0))
        assert medium.hears(1, 0)  # -50 dBm is way above threshold.

    def test_does_not_hear_weak_signal(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=150.0)
        medium.add_station(Station(0, 0, 0, 20.0))
        medium.add_station(Station(1, 10, 0, 20.0))
        assert not medium.hears(1, 0)  # -130 dBm is below any threshold.

    def test_cs_threshold_derived_from_noise(self):
        sim = Simulator()
        medium = _medium(sim, bandwidth=20e6)
        # noise(-94 with NF 7) + 19 ~ -75 dBm.
        assert medium.params.cs_threshold_dbm == pytest.approx(
            medium.noise_dbm + 19.0
        )

    def test_sinr_no_interference(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        medium.add_station(Station(0, 0, 0, 20.0))
        medium.add_station(Station(1, 10, 0, 20.0))
        tx = medium.transmit(0, duration=1e-3, kind="data", dst_id=1)
        sim.run(until=2e-3)
        assert medium.sinr_db(tx) == pytest.approx(-50.0 - medium.noise_dbm)

    def test_sinr_with_overlapping_interferer(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        for sid in (0, 1, 2):
            medium.add_station(Station(sid, sid * 10.0, 0, 20.0))
        tx = medium.transmit(0, duration=1e-3, kind="data", dst_id=1)
        medium.transmit(2, duration=1e-3, kind="data", dst_id=None)
        sim.run(until=2e-3)
        # Equal powers: SINR ~ 0 dB (interference dominates noise).
        assert medium.sinr_db(tx) == pytest.approx(0.0, abs=0.1)

    def test_sinr_weighted_by_overlap(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        for sid in (0, 1, 2):
            medium.add_station(Station(sid, sid * 10.0, 0, 20.0))
        tx = medium.transmit(0, duration=2e-3, kind="data", dst_id=1)
        sim.run(until=1e-3)
        medium.transmit(2, duration=1e-3, kind="data")
        sim.run(until=3e-3)
        # Interferer overlapped half the frame: SINR ~ +3 dB.
        assert medium.sinr_db(tx) == pytest.approx(3.0, abs=0.2)

    def test_prune_history(self):
        sim = Simulator()
        medium = _medium(sim)
        medium.add_station(Station(0, 0, 0, 20.0))
        medium.transmit(0, duration=1e-3, kind="data")
        sim.run(until=1.0)
        medium.prune_history(horizon_s=0.1)
        assert medium._history == []


def _build_pair(sim, loss_db=70.0, rts_cts=True):
    """One AP with one client, clean channel."""
    medium = _medium(sim, loss_db=loss_db, rts_cts=rts_cts)
    ap_station = Station(0, 0.0, 0.0, 20.0)
    client_station = Station(100, 50.0, 0.0, 20.0)
    medium.add_station(ap_station)
    medium.add_station(client_station)
    node = CsmaNode(sim, medium, ap_station, medium.params, np.random.default_rng(1))
    node.add_destination(100, WIFI_MCS_TABLE[5])
    return medium, node


class TestCsmaNode:
    def test_delivers_queued_traffic(self):
        sim = Simulator()
        medium, node = _build_pair(sim)
        node.enqueue(100, 1e6)
        sim.run(until=1.0)
        assert node.stats[100].bits_delivered == pytest.approx(1e6)
        assert node.queued_bits(100) == 0.0

    def test_no_failures_on_clean_channel(self):
        sim = Simulator()
        medium, node = _build_pair(sim)
        node.enqueue(100, 5e6)
        sim.run(until=2.0)
        assert node.stats[100].data_failures == 0

    def test_throughput_below_phy_rate(self):
        sim = Simulator()
        medium, node = _build_pair(sim)
        node.enqueue(100, 1e9)
        sim.run(until=1.0)
        delivered = node.stats[100].bits_delivered
        from repro.wifi.rates import data_rate_bps

        phy_rate = data_rate_bps(WIFI_MCS_TABLE[5], 20e6)
        assert 0.3 * phy_rate < delivered < phy_rate

    def test_rts_cts_adds_overhead(self):
        results = {}
        for rts in (True, False):
            sim = Simulator()
            medium, node = _build_pair(sim, rts_cts=rts)
            node.enqueue(100, 1e9)
            sim.run(until=1.0)
            results[rts] = node.stats[100].bits_delivered
        assert results[False] > results[True]

    def test_enqueue_unknown_destination_raises(self):
        sim = Simulator()
        medium, node = _build_pair(sim)
        with pytest.raises(KeyError):
            node.enqueue(999, 1000.0)

    def test_delivery_callback_invoked(self):
        sim = Simulator()
        medium, node = _build_pair(sim)
        deliveries = []
        node.delivery_callback = lambda dest, bits: deliveries.append((dest, bits))
        node.enqueue(100, 1e5)
        sim.run(until=1.0)
        assert deliveries
        assert sum(b for _, b in deliveries) == pytest.approx(1e5)

    def test_round_robin_across_clients(self):
        sim = Simulator()
        medium = _medium(sim, loss_db=70.0)
        ap_station = Station(0, 0.0, 0.0, 20.0)
        medium.add_station(ap_station)
        for sid in (100, 101):
            medium.add_station(Station(sid, 50.0, float(sid - 100), 20.0))
        node = CsmaNode(sim, medium, ap_station, medium.params, np.random.default_rng(2))
        for sid in (100, 101):
            node.add_destination(sid, WIFI_MCS_TABLE[5])
            node.enqueue(sid, 1e9)
        sim.run(until=1.0)
        a = node.stats[100].bits_delivered
        b = node.stats[101].bits_delivered
        assert a == pytest.approx(b, rel=0.2)


class TestContention:
    def _two_ap_world(self, mutual_loss_db, rng_seed=3):
        """Two APs, each serving its own client; configurable AP-AP loss."""
        sim = Simulator()
        params = DcfParams(timings=FrameTimings(bandwidth_hz=20e6))

        positions = {0: (0.0, 0.0), 1: (1000.0, 0.0), 100: (20.0, 0.0), 101: (980.0, 0.0)}

        def loss(a, b):
            pair = {a.station_id, b.station_id}
            if pair == {0, 1}:
                return mutual_loss_db
            # AP to own client: strong.
            if pair in ({0, 100}, {1, 101}):
                return 70.0
            # Cross links (AP to the other cell's client): strong enough to
            # break frames when transmissions overlap (SIR ~ 5 dB).
            if pair in ({0, 101}, {1, 100}):
                return 75.0
            return 120.0

        medium = WifiMedium(sim, loss, 20e6, params)
        for sid, (x, y) in positions.items():
            medium.add_station(Station(sid, x, y, 20.0))
        nodes = []
        for ap, client in ((0, 100), (1, 101)):
            node = CsmaNode(
                sim, medium, medium.station(ap), params,
                np.random.default_rng(rng_seed + ap),
            )
            node.add_destination(client, WIFI_MCS_TABLE[3])
            node.enqueue(client, 1e9)
            nodes.append(node)
        return sim, medium, nodes

    def test_mutually_sensing_aps_share_cleanly(self):
        sim, medium, nodes = self._two_ap_world(mutual_loss_db=60.0)
        sim.run(until=1.0)
        failures = sum(n.stats[d].data_failures for n in nodes for d in n.stats)
        attempts = sum(n.stats[d].data_attempts for n in nodes for d in n.stats)
        assert attempts > 0
        assert failures / attempts < 0.2

    def test_hidden_aps_collide(self):
        # APs cannot hear each other; their frames overlap at the clients.
        sim, medium, nodes = self._two_ap_world(mutual_loss_db=160.0)
        sim.run(until=1.0)
        failures = sum(n.stats[d].data_failures for n in nodes for d in n.stats)
        assert failures > 0

    def test_hidden_throughput_lower_than_coordinated(self):
        sim_a, _, nodes_a = self._two_ap_world(mutual_loss_db=60.0)
        sim_a.run(until=1.0)
        sim_b, _, nodes_b = self._two_ap_world(mutual_loss_db=160.0)
        sim_b.run(until=1.0)
        coordinated = sum(n.stats[d].bits_delivered for n in nodes_a for d in n.stats)
        hidden = sum(n.stats[d].bits_delivered for n in nodes_b for d in n.stats)
        assert hidden < coordinated


class TestExposedTerminal:
    """Two APs that hear each other but whose clients are far apart: both
    transmissions could proceed in parallel, yet CSMA serialises them --
    the classic exposed-terminal inefficiency the paper pins on long-range
    Wi-Fi."""

    def _world(self, mutual_loss_db):
        sim = Simulator()
        params = DcfParams(timings=FrameTimings(bandwidth_hz=20e6))

        def loss(a, b):
            pair = {a.station_id, b.station_id}
            if pair == {0, 1}:
                return mutual_loss_db       # AP <-> AP.
            if pair in ({0, 100}, {1, 101}):
                return 70.0                 # AP -> own client.
            return 140.0                    # Cross links: negligible.

        medium = WifiMedium(sim, loss, 20e6, params)
        for sid, (x, y) in {0: (0, 0), 1: (500, 0), 100: (-50, 0), 101: (550, 0)}.items():
            medium.add_station(Station(sid, float(x), float(y), 20.0))
        nodes = []
        for ap, client in ((0, 100), (1, 101)):
            node = CsmaNode(
                sim, medium, medium.station(ap), params,
                np.random.default_rng(11 + ap),
            )
            node.add_destination(client, WIFI_MCS_TABLE[5])
            node.enqueue(client, 1e9)
            nodes.append(node)
        return sim, nodes

    def _total(self, mutual_loss_db):
        sim, nodes = self._world(mutual_loss_db)
        sim.run(until=1.0)
        return sum(n.stats[d].bits_delivered for n in nodes for d in n.stats)

    def test_exposure_costs_throughput(self):
        # Mutually-sensing (exposed) pair vs truly isolated pair.  The APs
        # sometimes slip a TXOP into each other's RTS/CTS gaps (real DCF
        # does too), so the loss is substantial but not a full halving.
        exposed = self._total(mutual_loss_db=70.0)
        isolated = self._total(mutual_loss_db=140.0)
        assert exposed < 0.85 * isolated

    def test_exposed_pair_has_no_collisions(self):
        # Serialisation is wasteful but clean: no data failures.
        sim, nodes = self._world(mutual_loss_db=70.0)
        sim.run(until=1.0)
        failures = sum(n.stats[d].data_failures for n in nodes for d in n.stats)
        assert failures == 0
