"""Smoke + shape tests for every experiment reproduction.

These run scaled-down versions of each paper experiment and assert the
*direction* of every headline claim.  The full-scale numbers live in the
benchmark harness; here the point is that the claims survive at CI scale.
"""

import numpy as np
import pytest

from repro.experiments.convergence import (
    run_convergence_sweep,
    run_reuse_experiment,
)
from repro.experiments.coverage import run_drive_test
from repro.experiments.cqi_detector import run_fig8
from repro.experiments.db_timeline import run_db_timeline
from repro.experiments.interference_exp import run_two_cell_walk
from repro.experiments.large_scale import (
    TECH_CELLFI,
    TECH_LTE,
    TECH_WIFI,
    run_coverage_vs_density,
    run_page_load_times,
    run_throughput_cdfs,
)
from repro.experiments.prach_eval import run_prach_eval


@pytest.fixture(scope="module")
def drive_test():
    return run_drive_test(step_m=50.0, samples_per_point=40)


class TestFig1:
    def test_broadband_coverage(self, drive_test):
        # Paper: 1 Mb/s at >= 85% of locations.
        assert drive_test.coverage_fraction(1.0) >= 0.85

    def test_range_beyond_1300m(self, drive_test):
        assert drive_test.max_range_m(1.0) >= 1300.0

    def test_median_dl_coding_rate_near_half(self, drive_test):
        median = np.median(drive_test.all_code_rates("downlink"))
        assert 0.35 <= median <= 0.65

    def test_low_rates_used(self, drive_test):
        # LTE dips below Wi-Fi's 1/2 floor on the long links.
        rates = drive_test.all_code_rates("downlink")
        assert min(rates) < 0.2

    def test_uplink_rides_single_rb(self, drive_test):
        fractions = drive_test.channel_fractions("uplink")
        assert max(fractions) <= 1.0 / 13  # At most one subband equivalent.

    def test_downlink_uses_full_channel(self, drive_test):
        assert np.median(drive_test.channel_fractions("downlink")) == 1.0

    def test_harq_usage_on_long_links(self, drive_test):
        # Paper: ~25% of packets beyond 500 m use HARQ.
        usage = drive_test.harq_usage_beyond(500.0)
        assert 0.10 <= usage <= 0.45

    def test_harq_grows_with_distance(self, drive_test):
        near = [p.harq_fraction for p in drive_test.points if p.distance_m < 300.0]
        far = [p.harq_fraction for p in drive_test.points if p.distance_m > 900.0]
        assert np.mean(far) > np.mean(near)

    def test_throughput_decreases_with_distance(self, drive_test):
        curve = drive_test.throughput_curve()
        first_third = np.mean([t for d, t in curve if d < 500.0])
        last_third = np.mean([t for d, t in curve if d > 1100.0])
        assert last_third < first_third / 2


class TestFig6:
    @pytest.fixture(scope="class")
    def timeline(self):
        return run_db_timeline()

    def test_vacates_within_etsi_minute(self, timeline):
        assert timeline.vacate_latency_s is not None
        assert timeline.vacate_latency_s <= 60.0

    def test_compliant(self, timeline):
        assert timeline.compliant

    def test_resume_dominated_by_reboot_and_search(self, timeline):
        # Paper: 1 m 36 s reboot + 56 s search ~ 152 s.
        assert timeline.resume_latency_s == pytest.approx(152.0, abs=10.0)

    def test_radio_on_before_client(self, timeline):
        assert timeline.radio_on_time_s < timeline.client_reconnect_time_s


class TestFig7:
    @pytest.fixture(scope="class")
    def walk(self):
        return run_two_cell_walk()

    def test_sinr_spans_wide_range(self, walk):
        sinrs = [s.sinr_db for s in walk.samples]
        assert min(sinrs) < -10.0
        assert max(sinrs) > 15.0

    def test_signalling_interference_bounded(self, walk):
        # Paper: "the two vary by at most 20%".
        assert walk.signalling_vs_none_max_gap() <= 0.20 + 1e-9

    def test_data_interference_much_worse(self, walk):
        # Paper: up to ~50% goodput loss at SINR < 10 dB.
        assert walk.full_interference_median_loss() >= 0.25

    def test_disconnections_only_under_data_interference(self, walk):
        assert walk.disconnection_count() > 0
        # And they cluster at the low-SINR end of the path.
        low = [s for s in walk.samples if s.sinr_db < 0.0]
        high = [s for s in walk.samples if s.sinr_db > 10.0]
        assert not any(s.disconnected_full for s in high)
        assert any(s.disconnected_full for s in low)


class TestFig8:
    @pytest.fixture(scope="class")
    def trace(self):
        return run_fig8()

    def test_false_positives_below_2_percent(self, trace):
        assert trace.false_positive_rate < 0.02

    def test_true_positives_near_80_percent(self, trace):
        assert 0.6 <= trace.true_positive_rate <= 0.95

    def test_faded_interference_not_flagged(self, trace):
        # Weak interference must not trigger reallocation.
        assert trace.faded_flag_rate < 0.05

    def test_throughput_drops_during_interference(self, trace):
        on = [t for t, s in zip(trace.throughput_mbps, trace.interferer_on) if s]
        off = [t for t, s in zip(trace.throughput_mbps, trace.interferer_on) if not s]
        assert np.mean(on) < 0.6 * np.mean(off)


class TestPrach:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return run_prach_eval(trials=25, speed_trials=60)

    def test_reliable_at_minus_10db(self, evaluation):
        assert evaluation.detection_by_snr[-10.0] >= 0.95

    def test_degrades_below_operating_point(self, evaluation):
        assert evaluation.detection_by_snr[-20.0] < 0.5

    def test_low_false_alarms(self, evaluation):
        assert evaluation.false_alarm <= 0.02

    def test_complexity_ratio_large(self, evaluation):
        # One correlation vs one per candidate root (16 here).
        assert evaluation.complexity_ratio > 8.0

    def test_faster_than_occasion_rate(self, evaluation):
        assert evaluation.speed_factor_vs_occasion_rate > 1.0

    def test_shift_recovered(self, evaluation):
        assert evaluation.shift_identified


class TestTheorem1:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_convergence_sweep(
            n_nodes_list=(8, 32), fading_list=(0.0, 0.3), replications=5
        )

    def test_always_converges(self, sweep):
        assert all(p.converged_all for p in sweep)

    def test_within_bound(self, sweep):
        for point in sweep:
            assert point.mean_rounds <= point.bound_rounds

    def test_fading_slows_convergence(self, sweep):
        by_key = {(p.n_nodes, p.fading_p): p.mean_rounds for p in sweep}
        assert by_key[(32, 0.3)] >= by_key[(32, 0.0)]


class TestChannelReuse:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reuse_experiment(epochs=20)

    def test_packing_happens(self, result):
        assert result.reuse_moves > 0

    def test_exposed_clients_gain(self, result):
        # Paper: "upto 2x gain in throughput for exposed clients".
        assert result.exposed_gain > 1.05


class TestFig9Small:
    """Scaled-down large-scale comparison: directions must already hold."""

    @pytest.fixture(scope="class")
    def cdfs(self):
        return run_throughput_cdfs(
            seeds=[1], n_aps=8, epochs=8, wifi_duration_s=2.5, include_oracle=True
        )

    def test_cellfi_starves_fewest(self, cdfs):
        cellfi = cdfs.starved_fraction(TECH_CELLFI)
        assert cellfi <= cdfs.starved_fraction(TECH_LTE)
        assert cellfi <= cdfs.starved_fraction(TECH_WIFI)

    def test_cellfi_throughput_not_sacrificed(self, cdfs):
        assert cdfs.median_bps(TECH_CELLFI) >= 0.8 * cdfs.median_bps(TECH_LTE)

    def test_oracle_upper_bounds_starvation(self, cdfs):
        assert cdfs.starved_fraction("Oracle") <= cdfs.starved_fraction(TECH_LTE)

    def test_page_loads_favour_cellfi(self):
        result = run_page_load_times(
            seeds=[2], n_aps=6, duration_s=12.0, include_wifi=True
        )
        assert result.median_s(TECH_CELLFI) <= result.median_s(TECH_WIFI)


class TestFig2Small:
    """Scaled-down Figure 2: the af/ac gap at CI size."""

    @pytest.fixture(scope="class")
    def fig2(self):
        from repro.experiments.wifi_macs import run_fig2

        return run_fig2(seed=2, n_aps=5, clients_per_ap=4, duration_s=2.0)

    def test_snr_calibration(self, fig2):
        gap = abs(fig2.mean_snr_db["802.11af"] - fig2.mean_snr_db["802.11ac"])
        assert gap <= 1.5

    def test_ac_dominates_af(self, fig2):
        af = np.array(fig2.throughput_bps["802.11af"])
        ac = np.array(fig2.throughput_bps["802.11ac"])
        assert np.median(ac) > np.median(af)
        assert (af < 50e3).mean() >= (ac < 50e3).mean()


class TestDenserScenario:
    """Paper: with 16 clients per AP 'CellFi still offers coverage to more
    than 80% of users', ahead of LTE."""

    def test_sixteen_clients_per_ap(self):
        from repro.experiments.large_scale import (
            run_lte_family_saturated,
        )
        from repro.experiments.common import build_scenario

        scenario = build_scenario(seed=4, n_aps=6, clients_per_ap=16)
        cellfi = run_lte_family_saturated(TECH_CELLFI, scenario, epochs=8)
        lte = run_lte_family_saturated(TECH_LTE, scenario, epochs=8)
        assert cellfi.connected_fraction >= 0.80
        assert cellfi.connected_fraction >= lte.connected_fraction - 0.02


class TestUplinkProtection:
    """Extension: CellFi's TDD allocations also shield the uplink."""

    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.experiments.uplink_exp import run_uplink_comparison

        return run_uplink_comparison(seed=3, n_aps=6, clients_per_ap=4, epochs=8)

    def test_cellfi_lifts_uplink_sinr(self, comparison):
        assert comparison.median_sinr_db("CellFi") >= comparison.median_sinr_db("LTE")

    def test_uplink_still_delivers(self, comparison):
        assert comparison.median_bps("CellFi") > 0.0
