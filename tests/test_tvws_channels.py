"""Unit tests for TV channel plans."""

import pytest

from repro.tvws.channels import ChannelPlan, EU_CHANNEL_PLAN, US_CHANNEL_PLAN


class TestPlans:
    def test_us_plan_shape(self):
        assert len(US_CHANNEL_PLAN) == 38
        ch14 = US_CHANNEL_PLAN.channel(14)
        assert ch14.low_hz == 470e6
        assert ch14.bandwidth_hz == 6e6

    def test_eu_plan_shape(self):
        assert len(EU_CHANNEL_PLAN) == 40
        ch21 = EU_CHANNEL_PLAN.channel(21)
        assert ch21.low_hz == 470e6
        assert ch21.bandwidth_hz == 8e6
        # ETSI band ends at 790 MHz.
        assert EU_CHANNEL_PLAN.channel(60).high_hz == pytest.approx(790e6)

    def test_channels_contiguous(self):
        for plan in (US_CHANNEL_PLAN, EU_CHANNEL_PLAN):
            for a, b in zip(plan.channels, plan.channels[1:]):
                assert a.high_hz == pytest.approx(b.low_hz)

    def test_contains(self):
        assert 14 in US_CHANNEL_PLAN
        assert 13 not in US_CHANNEL_PLAN

    def test_unknown_channel_raises(self):
        with pytest.raises(KeyError):
            US_CHANNEL_PLAN.channel(99)

    def test_center_frequency(self):
        assert US_CHANNEL_PLAN.channel(14).center_hz == pytest.approx(473e6)

    def test_overlaps(self):
        ch = US_CHANNEL_PLAN.channel(14)
        assert ch.overlaps(469e6, 471e6)
        assert not ch.overlaps(476e6, 480e6)

    def test_invalid_plan_parameters(self):
        with pytest.raises(ValueError):
            ChannelPlan("bad", 1, 0, 470e6, 6e6)
        with pytest.raises(ValueError):
            ChannelPlan("bad", 1, 4, 470e6, 0.0)


class TestContiguousRuns:
    def test_single_run(self):
        runs = US_CHANNEL_PLAN.contiguous_runs([14, 15, 16])
        assert runs == [[14, 15, 16]]

    def test_split_runs(self):
        runs = US_CHANNEL_PLAN.contiguous_runs([14, 16, 17, 20])
        assert runs == [[14], [16, 17], [20]]

    def test_duplicates_collapsed(self):
        assert US_CHANNEL_PLAN.contiguous_runs([14, 14, 15]) == [[14, 15]]

    def test_unknown_channel_in_run_raises(self):
        with pytest.raises(KeyError):
            US_CHANNEL_PLAN.contiguous_runs([1])

    def test_empty(self):
        assert US_CHANNEL_PLAN.contiguous_runs([]) == []


class TestCarrierFitting:
    def test_5mhz_fits_one_us_channel(self):
        fit = US_CHANNEL_PLAN.fit_lte_carrier([14], 5e6)
        assert fit is not None
        channels, center = fit
        assert channels == [14]
        assert center == pytest.approx(473e6)

    def test_10mhz_needs_two_us_channels(self):
        assert US_CHANNEL_PLAN.fit_lte_carrier([14], 10e6) is None
        fit = US_CHANNEL_PLAN.fit_lte_carrier([14, 15], 10e6)
        assert fit is not None
        channels, center = fit
        assert channels == [14, 15]
        assert center == pytest.approx(476e6)

    def test_noncontiguous_does_not_fit(self):
        assert US_CHANNEL_PLAN.fit_lte_carrier([14, 16], 10e6) is None

    def test_prefers_lowest_frequency_fit(self):
        fit = US_CHANNEL_PLAN.fit_lte_carrier([20, 21, 14, 15], 10e6)
        assert fit[0] == [14, 15]

    def test_20mhz_in_eu(self):
        # 20 MHz fits into three 8-MHz EU channels.
        fit = EU_CHANNEL_PLAN.fit_lte_carrier([30, 31, 32], 20e6)
        assert fit is not None
        assert fit[0] == [30, 31, 32]
