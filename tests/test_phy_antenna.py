"""Unit tests for antenna patterns."""

import pytest

from repro.phy.antenna import OmniAntenna, SectorAntenna, _wrap_angle_deg


class TestOmni:
    def test_constant_gain(self):
        antenna = OmniAntenna(gain_dbi=3.0)
        for bearing in (-180.0, -90.0, 0.0, 45.0, 179.0):
            assert antenna.gain_dbi(bearing) == 3.0

    def test_gain_towards_matches(self):
        antenna = OmniAntenna(2.0)
        assert antenna.gain_towards(0, 0, 100, 100) == 2.0


class TestSector:
    def test_boresight_has_peak_gain(self):
        antenna = SectorAntenna(peak_gain_dbi=7.0, boresight_deg=30.0)
        assert antenna.gain_dbi(30.0) == pytest.approx(7.0)

    def test_3db_point_at_half_beamwidth(self):
        antenna = SectorAntenna(
            peak_gain_dbi=7.0, boresight_deg=0.0, beamwidth_deg=120.0
        )
        # The 3GPP pattern puts 3 dB attenuation at theta/theta_3dB = 1/2.
        assert antenna.gain_dbi(60.0) == pytest.approx(7.0 - 3.0)

    def test_back_lobe_capped(self):
        antenna = SectorAntenna(
            peak_gain_dbi=7.0, boresight_deg=0.0, front_back_db=20.0
        )
        assert antenna.gain_dbi(180.0) == pytest.approx(7.0 - 20.0)

    def test_pattern_symmetric(self):
        antenna = SectorAntenna(boresight_deg=0.0)
        assert antenna.gain_dbi(40.0) == pytest.approx(antenna.gain_dbi(-40.0))

    def test_wraps_across_180(self):
        antenna = SectorAntenna(boresight_deg=170.0)
        # -170 deg is only 20 deg away from boresight through the wrap.
        assert antenna.gain_dbi(-170.0) > antenna.gain_dbi(90.0)

    def test_gain_towards_geometry(self):
        antenna = SectorAntenna(peak_gain_dbi=7.0, boresight_deg=0.0)
        # A point due east is on boresight.
        assert antenna.gain_towards(0, 0, 100, 0) == pytest.approx(7.0)
        # A point due west is in the back lobe.
        assert antenna.gain_towards(0, 0, -100, 0) == pytest.approx(7.0 - 20.0)

    def test_bad_beamwidth_raises(self):
        with pytest.raises(ValueError):
            SectorAntenna(beamwidth_deg=0.0)

    def test_negative_front_back_raises(self):
        with pytest.raises(ValueError):
            SectorAntenna(front_back_db=-5.0)


class TestWrapAngle:
    @pytest.mark.parametrize(
        "angle,expected",
        [(0.0, 0.0), (180.0, 180.0), (181.0, -179.0), (-181.0, 179.0),
         (360.0, 0.0), (540.0, 180.0), (-360.0, 0.0)],
    )
    def test_wraps(self, angle, expected):
        assert _wrap_angle_deg(angle) == pytest.approx(expected)
