"""Tests for the database-outage robustness experiment."""

import json

from repro.cli import main
from repro.experiments.db_outage import (
    db_outage_cell,
    db_outage_sweep_spec,
    run_db_outage,
)
from repro.experiments.sweep import run_sweep

_FAULTS = dict(timeout_prob=0.1, drop_prob=0.05, error_prob=0.02)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        first = run_db_outage(seed=1, tail_s=150.0, **_FAULTS)
        second = run_db_outage(seed=1, tail_s=150.0, **_FAULTS)
        assert first.digest == second.digest
        assert first.selector_timeline == second.selector_timeline
        assert first.robustness_rows == second.robustness_rows

    def test_different_seed_different_schedule(self):
        first = run_db_outage(seed=1, tail_s=150.0, **_FAULTS)
        second = run_db_outage(seed=2, tail_s=150.0, **_FAULTS)
        assert first.digest != second.digest

    def test_sweep_jobs_invariant(self):
        spec = db_outage_sweep_spec(durations=(20.0, 90.0), seeds=(1,))
        inline = run_sweep(spec, jobs=0)
        forked = run_sweep(spec, jobs=2)
        key = lambda result: sorted(
            (r.params["outage_s"], r.metrics["digest"]) for r in result.ok
        )
        assert key(inline) == key(forked)
        assert len(inline.ok) == 2

    def test_cell_digest_matches_direct_run(self):
        cell = db_outage_cell(seed=1, outage_s=90.0)
        direct = run_db_outage(
            seed=1,
            outages=((60.0, 90.0),),
            timeout_prob=0.05,
            drop_prob=0.05,
            error_prob=0.02,
            malformed_prob=0.02,
            latency_spike_prob=0.05,
            tail_s=200.0,
        )
        assert cell["digest"] == direct.digest


class TestScenarioShape:
    def test_fault_free_run_is_clean(self):
        result = run_db_outage(seed=1, outages=(), tail_s=100.0)
        assert result.compliant
        assert result.counts == {}
        assert result.downtime_s == 0.0
        assert result.loss_fraction == 0.0

    def test_loss_grows_with_outage_duration(self):
        short = db_outage_cell(seed=1, outage_s=20.0)
        long = db_outage_cell(seed=1, outage_s=120.0)
        assert short["throughput_loss_fraction"] == 0.0
        assert long["throughput_loss_fraction"] > 0.0
        assert long["forced_vacates"] == 1

    def test_metrics_are_json_safe(self):
        cell = db_outage_cell(seed=1, outage_s=20.0)
        json.dumps(cell)


class TestCli:
    def test_db_outage_exit_zero_when_compliant(self, capsys):
        code = main(
            [
                "db-outage",
                "--seed", "1",
                "--outages", "40:30",
                "--timeout-prob", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Database-outage timeline" in out
        assert "Robustness events" in out
        assert "digest" in out

    def test_db_outage_sweep_via_cli(self, tmp_path, capsys):
        out_path = tmp_path / "dbo.jsonl"
        code = main(
            [
                "sweep", "db_outage",
                "--outage-durations", "20", "90",
                "--seeds", "1",
                "--jobs", "0",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in out_path.read_text().splitlines() if line
        ]
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)
