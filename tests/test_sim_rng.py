"""Unit tests for seeded RNG streams."""

import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(42).stream("x").random(5)
        b = RngStreams(42).stream("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        streams = RngStreams(42)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_consumer_does_not_perturb_existing(self):
        one = RngStreams(7)
        draw_then = one.stream("topology").random(3)
        two = RngStreams(7)
        two.stream("newcomer").random(100)  # A new consumer appears.
        draw_now = two.stream("topology").random(3)
        assert list(draw_then) == list(draw_now)

    def test_fork_is_deterministic(self):
        a = RngStreams(3).fork("rep-1").stream("x").random(4)
        b = RngStreams(3).fork("rep-1").stream("x").random(4)
        assert list(a) == list(b)

    def test_fork_labels_differ(self):
        base = RngStreams(3)
        a = base.fork("rep-1").stream("x").random(4)
        b = base.fork("rep-2").stream("x").random(4)
        assert list(a) != list(b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)

    def test_master_seed_exposed(self):
        assert RngStreams(9).master_seed == 9
