"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interference.hopping import ClientSense, HopperConfig, SubchannelHopper
from repro.core.interference.share import compute_share, shares_feasible
from repro.phy.harq import block_error_rate, delivery_probability, expected_attempts
from repro.phy.mcs import cqi_from_sinr, efficiency_from_cqi
from repro.phy.resource_grid import RB_COUNT_BY_BANDWIDTH, ResourceGrid
from repro.traffic.flows import Flow, FlowTracker
from repro.utils.dbmath import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    watt_to_dbm,
    wireless_sum_dbm,
)
from repro.utils.stats import Cdf, jain_fairness, percentile


class TestDbMathProperties:
    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-150.0, max_value=60.0))
    def test_dbm_roundtrip(self, dbm):
        assert watt_to_dbm(dbm_to_watt(dbm)) == pytest.approx(dbm, abs=1e-9)

    @given(
        st.lists(st.floats(min_value=-120.0, max_value=30.0), min_size=1, max_size=8)
    )
    def test_wireless_sum_at_least_strongest(self, levels):
        total = wireless_sum_dbm(levels)
        assert total >= max(levels) - 1e-9

    @given(
        st.lists(st.floats(min_value=-120.0, max_value=30.0), min_size=1, max_size=8)
    )
    def test_wireless_sum_bounded_by_count(self, levels):
        total = wireless_sum_dbm(levels)
        bound = max(levels) + 10.0 * math.log10(len(levels))
        assert total <= bound + 1e-9


class TestStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        span = max(abs(min(values)), abs(max(values)), 1.0)
        tolerance = 1e-12 * span  # Interpolation rounding slack.
        assert min(values) - tolerance <= result <= max(values) + tolerance

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_jain_fairness_bounds(self, values):
        fairness = jain_fairness(values)
        assert 1.0 / len(values) - 1e-9 <= fairness <= 1.0 + 1e-9

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=100,
        )
    )
    def test_cdf_monotone(self, values):
        cdf = Cdf(values)
        lo, hi = min(values), max(values)
        previous = 0.0
        for i in range(11):
            x = lo + (hi - lo) * i / 10.0
            level = cdf.evaluate(x)
            assert level >= previous - 1e-12
            previous = level
        assert cdf.evaluate(hi) == 1.0


class TestMcsProperties:
    @given(st.floats(min_value=-30.0, max_value=40.0))
    def test_cqi_in_range(self, sinr):
        assert 0 <= cqi_from_sinr(sinr) <= 15

    @given(
        st.floats(min_value=-30.0, max_value=40.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_cqi_monotone(self, sinr, delta):
        assert cqi_from_sinr(sinr + delta) >= cqi_from_sinr(sinr)

    @given(st.integers(min_value=0, max_value=15))
    def test_efficiency_nonnegative(self, cqi):
        assert efficiency_from_cqi(cqi) >= 0.0


class TestHarqProperties:
    @given(
        st.floats(min_value=-20.0, max_value=30.0),
        st.integers(min_value=1, max_value=15),
    )
    def test_bler_is_probability(self, sinr, cqi):
        assert 0.0 <= block_error_rate(sinr, cqi) <= 1.0

    @given(
        st.floats(min_value=-20.0, max_value=30.0),
        st.integers(min_value=1, max_value=15),
    )
    def test_delivery_beats_single_shot(self, sinr, cqi):
        # HARQ can only help: P(delivered) >= P(first attempt succeeds).
        assert (
            delivery_probability(sinr, cqi)
            >= (1.0 - block_error_rate(sinr, cqi)) - 1e-12
        )

    @given(
        st.floats(min_value=-20.0, max_value=30.0),
        st.integers(min_value=1, max_value=15),
    )
    def test_expected_attempts_bounds(self, sinr, cqi):
        assert 1.0 - 1e-12 <= expected_attempts(sinr, cqi) <= 4.0 + 1e-12


class TestResourceGridProperties:
    @given(st.sampled_from(sorted(RB_COUNT_BY_BANDWIDTH)))
    def test_subchannels_partition_rbs(self, bandwidth):
        grid = ResourceGrid(bandwidth)
        total = sum(grid.subchannel_rbs(k) for k in grid.all_subchannels())
        assert total == grid.n_rbs

    @given(
        st.sampled_from(sorted(RB_COUNT_BY_BANDWIDTH)),
        st.floats(min_value=0.0, max_value=5.55),
    )
    def test_rates_nonnegative_and_bounded(self, bandwidth, efficiency):
        grid = ResourceGrid(bandwidth)
        rate = grid.downlink_rate_bps(efficiency, grid.n_rbs)
        assert rate >= 0.0
        # 5.55 bit/RE over the whole grid is the ceiling.
        assert rate <= grid.peak_downlink_rate_bps() + 1e-6


class TestShareProperties:
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=500),
    )
    def test_share_bounds(self, total, own, contenders):
        share = compute_share(total, own, contenders)
        assert 0 <= share <= total
        if own > 0:
            assert share >= 1

    @given(
        st.integers(min_value=1, max_value=13),
        st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=6),
    )
    def test_shared_collision_domain_feasible(self, total_subchannels, client_counts):
        # When every AP hears every client, the computed shares must fit in
        # the carrier with at most one extra subchannel per AP (the
        # at-least-one rule for tiny shares).
        everyone = sum(client_counts)
        shares = [
            compute_share(total_subchannels, n, everyone) for n in client_counts
        ]
        slack = sum(1 for s, n in zip(shares, client_counts) if s == 1)
        assert sum(shares) <= total_subchannels + slack


class TestHopperProperties:
    @given(
        st.integers(min_value=0, max_value=13),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_holdings_track_share(self, share, seed):
        hopper = SubchannelHopper(
            HopperConfig(n_subchannels=13), np.random.default_rng(seed)
        )
        hopper.step(share, {})
        assert len(hopper.holdings) == share
        # A second step with an empty sense dict keeps the size.
        hopper.step(share, {})
        assert len(hopper.holdings) == share

    @given(
        st.integers(min_value=1, max_value=13),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_holdings_are_valid_subchannels(self, share, seed):
        hopper = SubchannelHopper(
            HopperConfig(n_subchannels=13), np.random.default_rng(seed)
        )
        holdings = hopper.step(share, {})
        assert holdings <= set(range(13))
        assert len(holdings) == len(set(holdings))


class TestShareFormulaProperties:
    """The Section 5.2 share formula, checked against the paper's algebra."""

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=400),
    )
    def test_matches_paper_formula(self, total, own, est):
        # S_i = floor(N_i * S / NP_i), NP_i clamped up to N_i (an AP always
        # hears its own clients), result clamped into [1, S].
        contenders = max(est, own)
        expected = max(1, min(math.floor(own * total / contenders), total))
        assert compute_share(total, own, est) == expected

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=400),
    )
    def test_monotone_in_own_clients(self, total, own, est):
        assert compute_share(total, own + 1, est) >= compute_share(total, own, est)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=400),
    )
    def test_antitone_in_contenders(self, total, own, est):
        # Hearing more contenders can only shrink the share: imperfect
        # sensing under-estimates, never over-grabs (Section 5.4).
        assert compute_share(total, own, est + 1) <= compute_share(total, own, est)

    @given(
        st.integers(min_value=2, max_value=13),
        st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=5),
    )
    def test_demand_slack_keeps_shares_feasible(self, total, client_counts):
        # Under the demand assumption (neighbourhood demand leaves slack:
        # every AP entitled to >= 1 full subchannel), the computed shares
        # pack into the carrier with no at-least-one inflation at all.
        everyone = sum(client_counts)
        shares = [compute_share(total, n, everyone) for n in client_counts]
        if total >= everyone:  # demand assumption holds
            assert shares_feasible(shares, total)


def _epoch_senses(n_subchannels=13):
    """Strategy: one epoch's ``{client_id: ClientSense}`` sensing input."""
    flags = st.lists(
        st.booleans(), min_size=n_subchannels, max_size=n_subchannels
    )
    cqi = st.lists(
        st.integers(min_value=0, max_value=15),
        min_size=n_subchannels,
        max_size=n_subchannels,
    )
    fracs = st.dictionaries(
        st.integers(min_value=0, max_value=n_subchannels - 1),
        st.floats(min_value=0.01, max_value=1.0),
        max_size=4,
    )
    sense = st.builds(
        lambda c, f, s: ClientSense(
            subband_cqi=c,
            max_subband_cqi=c,
            interference_detected=f,
            scheduled_fraction=s,
        ),
        cqi,
        flags,
        fracs,
    )
    return st.dictionaries(
        st.integers(min_value=0, max_value=9), sense, max_size=3
    )


class _RecordingHopper(SubchannelHopper):
    """Records every exponential bucket draw for the ladder invariant."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.draws = []

    def _draw_bucket(self):
        value = super()._draw_bucket()
        self.draws.append(value)
        return value


class TestBucketProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=13),
        st.lists(_epoch_senses(), min_size=1, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_buckets_stay_within_the_exponential_ladder(
        self, seed, share, epochs
    ):
        # Buckets are born as exponential draws and only ever decremented;
        # a drained bucket is hopped away the same epoch.  So after any
        # step sequence every held bucket is non-negative and no larger
        # than the biggest draw so far.
        hopper = _RecordingHopper(
            HopperConfig(n_subchannels=13), np.random.default_rng(seed)
        )
        for senses in epochs:
            hopper.step(share, senses)
            assert hopper.draws, "holding subchannels implies draws happened"
            ceiling = max(hopper.draws) + 1e-9
            for bucket in hopper.buckets.values():
                assert 0.0 <= bucket <= ceiling

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=13),
        st.lists(_epoch_senses(), min_size=1, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_share_tracked_through_arbitrary_sensing(self, seed, share, epochs):
        # Whatever the interference reports, the hopper ends every epoch
        # holding exactly its target share (candidates always exist while
        # share <= carrier size).
        hopper = SubchannelHopper(
            HopperConfig(n_subchannels=13), np.random.default_rng(seed)
        )
        for senses in epochs:
            holdings = hopper.step(share, senses)
            assert len(holdings) == share
            assert holdings <= set(range(13))


class TestReusePackingProperties:
    @given(
        st.integers(min_value=1, max_value=13),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_packing_never_leaves_a_usable_lower_subchannel(self, share, seed):
        # With every subchannel persistently interference-free, re-use
        # packing must walk the holdings down until they occupy exactly
        # the lowest-index subchannels -- holding a higher subchannel
        # while a persistently-free lower one exists is the bug the rule
        # forbids.
        config = HopperConfig(n_subchannels=13, reuse_persistence_epochs=2)
        hopper = SubchannelHopper(config, np.random.default_rng(seed))
        clean = ClientSense(
            subband_cqi=[10] * 13,
            max_subband_cqi=[10] * 13,
            interference_detected=[False] * 13,
            scheduled_fraction={},
        )
        hopper.step(share, {})  # initial random pick
        for _ in range(config.reuse_persistence_epochs + 13 + 2):
            hopper.step(share, {0: clean})
        assert hopper.holdings == set(range(share))

    @given(
        st.integers(min_value=2, max_value=13),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_packing_disabled_means_no_moves(self, share, seed):
        config = HopperConfig(n_subchannels=13, reuse_enabled=False)
        hopper = SubchannelHopper(config, np.random.default_rng(seed))
        clean = ClientSense(
            subband_cqi=[10] * 13,
            max_subband_cqi=[10] * 13,
            interference_detected=[False] * 13,
            scheduled_fraction={},
        )
        initial = set(hopper.step(share, {}))
        for _ in range(8):
            hopper.step(share, {0: clean})
        assert hopper.reuse_moves == 0
        assert hopper.holdings == initial  # nothing drains, nothing moves


class TestFlowTrackerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e5),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        ),
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30),
    )
    def test_conservation(self, flows, services):
        """Bits served never exceed bits offered; queues never go negative."""
        tracker = FlowTracker()
        offered = 0.0
        for size, arrival in flows:
            tracker.arrive(Flow(client_id=1, arrival_s=arrival, size_bits=size))
            offered += size
        t = 100.0
        for amount in services:
            tracker.serve(1, amount, t, t + 1.0)
            t += 1.0
            assert tracker.queued_bits(1) >= -1e-9
        delivered = offered - tracker.queued_bits(1)
        assert delivered <= offered + 1e-6
        for flow in tracker.completed:
            assert flow.completed_s >= flow.arrival_s or flow.completed_s >= 100.0
