"""Unit tests for propagation models."""

import math

import pytest

from repro.phy.propagation import (
    CompositeChannel,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    LogNormalShadowing,
    UrbanHataPathLoss,
)


class _Node:
    def __init__(self, x, y):
        self.x, self.y = x, y


class TestFreeSpace:
    def test_known_value_2ghz_100m(self):
        # FSPL(2.4 GHz, 100 m) ~ 80 dB.
        model = FreeSpacePathLoss(2.4e9)
        assert model.path_loss_db(100.0) == pytest.approx(80.1, abs=0.2)

    def test_slope_is_20db_per_decade(self):
        model = FreeSpacePathLoss(600e6)
        assert model.path_loss_db(1000.0) - model.path_loss_db(100.0) == pytest.approx(
            20.0, abs=0.01
        )

    def test_lower_frequency_less_loss(self):
        assert FreeSpacePathLoss(600e6).path_loss_db(500.0) < FreeSpacePathLoss(
            2.4e9
        ).path_loss_db(500.0)

    def test_distance_clamped_below_one_meter(self):
        model = FreeSpacePathLoss(600e6)
        assert model.path_loss_db(0.0) == model.path_loss_db(1.0)

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            FreeSpacePathLoss(600e6).path_loss_db(-1.0)

    def test_bad_frequency_raises(self):
        with pytest.raises(ValueError):
            FreeSpacePathLoss(0.0)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        model = LogDistancePathLoss(600e6, exponent=3.7, reference_m=10.0)
        free = FreeSpacePathLoss(600e6)
        assert model.path_loss_db(10.0) == pytest.approx(free.path_loss_db(10.0))

    def test_slope_beyond_reference(self):
        model = LogDistancePathLoss(600e6, exponent=4.0, reference_m=10.0)
        delta = model.path_loss_db(1000.0) - model.path_loss_db(100.0)
        assert delta == pytest.approx(40.0, abs=0.01)

    def test_free_space_inside_reference(self):
        model = LogDistancePathLoss(600e6, exponent=4.0, reference_m=100.0)
        free = FreeSpacePathLoss(600e6)
        assert model.path_loss_db(50.0) == pytest.approx(free.path_loss_db(50.0))

    def test_exponent_below_two_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(600e6, exponent=1.5)


class TestUrbanHata:
    def test_calibration_at_one_km(self):
        # The value the repo's link budgets are built around: ~126 dB.
        model = UrbanHataPathLoss()
        assert model.path_loss_db(1000.0) == pytest.approx(126.3, abs=0.5)

    def test_slope_around_37db_per_decade(self):
        model = UrbanHataPathLoss()
        delta = model.path_loss_db(1000.0) - model.path_loss_db(100.0)
        assert delta == pytest.approx(37.2, abs=0.3)

    def test_taller_base_station_reduces_loss(self):
        low = UrbanHataPathLoss(base_height_m=10.0)
        high = UrbanHataPathLoss(base_height_m=50.0)
        assert high.path_loss_db(1000.0) < low.path_loss_db(1000.0)

    def test_higher_frequency_more_loss(self):
        assert UrbanHataPathLoss(frequency_hz=700e6).path_loss_db(
            1000.0
        ) > UrbanHataPathLoss(frequency_hz=500e6).path_loss_db(1000.0)

    def test_frequency_range_enforced(self):
        with pytest.raises(ValueError):
            UrbanHataPathLoss(frequency_hz=2.4e9)

    def test_paper_range_feasible(self):
        # 36 dBm EIRP - PL(1.3 km) must stay above the CQI-1 sensitivity
        # over 5 MHz (~ -107 dBm + (-6.7) margin).
        model = UrbanHataPathLoss()
        rx_dbm = 36.0 - model.path_loss_db(1300.0)
        assert rx_dbm > -107.5 - 6.7


class TestShadowing:
    def test_deterministic_per_link(self):
        shadow = LogNormalShadowing(sigma_db=8.0, seed=1)
        a = shadow.shadowing_db(0.0, 0.0, 100.0, 50.0)
        b = shadow.shadowing_db(0.0, 0.0, 100.0, 50.0)
        assert a == b

    def test_reciprocal(self):
        shadow = LogNormalShadowing(sigma_db=8.0, seed=1)
        forward = shadow.shadowing_db(0.0, 0.0, 100.0, 50.0)
        reverse = shadow.shadowing_db(100.0, 50.0, 0.0, 0.0)
        assert forward == reverse

    def test_zero_sigma_is_zero(self):
        shadow = LogNormalShadowing(sigma_db=0.0, seed=1)
        assert shadow.shadowing_db(0, 0, 10, 10) == 0.0

    def test_seed_decorrelates(self):
        a = LogNormalShadowing(8.0, seed=1).shadowing_db(0, 0, 100, 50)
        b = LogNormalShadowing(8.0, seed=2).shadowing_db(0, 0, 100, 50)
        assert a != b

    def test_empirical_sigma(self):
        shadow = LogNormalShadowing(sigma_db=6.0, seed=3)
        samples = [
            shadow.shadowing_db(0.0, 0.0, float(i), float(2 * i + 1))
            for i in range(1, 2000)
        ]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.5
        assert math.sqrt(var) == pytest.approx(6.0, rel=0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalShadowing(sigma_db=-1.0)


class TestCompositeChannel:
    def test_without_shadowing_equals_path_loss(self):
        channel = CompositeChannel(UrbanHataPathLoss())
        a, b = _Node(0, 0), _Node(600, 800)  # 1 km apart.
        assert channel.loss_db(a, b) == pytest.approx(
            UrbanHataPathLoss().path_loss_db(1000.0)
        )

    def test_shadowing_added(self):
        shadow = LogNormalShadowing(sigma_db=8.0, seed=9)
        channel = CompositeChannel(UrbanHataPathLoss(), shadow)
        a, b = _Node(0, 0), _Node(600, 800)
        expected = UrbanHataPathLoss().path_loss_db(1000.0) + shadow.shadowing_db(
            0, 0, 600, 800
        )
        assert channel.loss_db(a, b) == pytest.approx(expected)

    def test_symmetric(self):
        channel = CompositeChannel(
            UrbanHataPathLoss(), LogNormalShadowing(7.0, seed=4)
        )
        a, b = _Node(10, 20), _Node(500, 900)
        assert channel.loss_db(a, b) == channel.loss_db(b, a)
