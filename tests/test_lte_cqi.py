"""Unit tests for CQI reporting and the subband interference detector."""

import numpy as np
import pytest

from repro.lte.cqi import (
    CqiReport,
    CqiReportingConfig,
    SubbandCqiReporter,
    measure_report,
)


class TestReportingConfig:
    def test_default_mode(self):
        config = CqiReportingConfig()
        assert config.mode == "3-0"
        assert config.period_s == 2e-3
        assert config.n_subbands == 13

    def test_payload_bits(self):
        # 4-bit wideband + 13 x 2-bit subbands.
        assert CqiReportingConfig().payload_bits == 30

    def test_uplink_overhead_order_of_10kbps(self):
        # The paper computes ~10 kb/s; the strict field count gives 15 kb/s.
        overhead = CqiReportingConfig().uplink_overhead_bps
        assert 8e3 <= overhead <= 20e3


class TestMeasureReport:
    def test_quantises_subbands(self):
        report = measure_report([-10.0, 0.0, 25.0])
        assert report.subband_cqi[0] == 0
        assert 1 <= report.subband_cqi[1] <= 5
        assert report.subband_cqi[2] == 15

    def test_wideband_reflects_average(self):
        report = measure_report([10.0, 10.0, 10.0])
        assert report.cqi_for(0) == report.wideband_cqi

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            measure_report([10.0], measurement_noise_db=1.0)

    def test_noise_perturbs_reports(self):
        rng = np.random.default_rng(0)
        reports = {
            tuple(
                measure_report([8.0] * 4, measurement_noise_db=2.0, rng=rng).subband_cqi
            )
            for _ in range(20)
        }
        assert len(reports) > 1

    def test_timestamp_carried(self):
        assert measure_report([5.0], time=3.5).time == 3.5


class TestSubbandReporter:
    def _reporter(self, **kwargs):
        return SubbandCqiReporter(n_subbands=2, **kwargs)

    def _feed(self, reporter, cqis, n):
        for i in range(n):
            reporter.ingest(CqiReport(wideband_cqi=max(cqis), subband_cqi=list(cqis), time=i * 2e-3))

    def test_no_interference_no_detection(self):
        reporter = self._reporter()
        self._feed(reporter, (12, 12), 100)
        assert not reporter.interference_detected(0)
        assert not reporter.interference_detected(1)

    def test_sustained_drop_detected(self):
        reporter = self._reporter()
        self._feed(reporter, (12, 12), 50)
        self._feed(reporter, (12, 4), 15)  # 4 < 0.6 * 12.
        assert not reporter.interference_detected(0)
        assert reporter.interference_detected(1)

    def test_short_drop_not_detected(self):
        reporter = self._reporter(consecutive_required=10)
        self._feed(reporter, (12, 12), 50)
        self._feed(reporter, (12, 4), 5)
        assert not reporter.interference_detected(1)

    def test_mild_drop_not_detected(self):
        # 8 >= 0.6 * 12 = 7.2, so a one-step CQI drop must not fire.
        reporter = self._reporter()
        self._feed(reporter, (12, 12), 50)
        self._feed(reporter, (12, 8), 50)
        assert not reporter.interference_detected(1)

    def test_recovery_resets_streak(self):
        reporter = self._reporter()
        self._feed(reporter, (12, 12), 50)
        self._feed(reporter, (12, 4), 8)
        self._feed(reporter, (12, 12), 1)
        self._feed(reporter, (12, 4), 8)
        assert not reporter.interference_detected(1)

    def test_max_tracking_window(self):
        reporter = SubbandCqiReporter(n_subbands=1, max_window=20)
        self._feed_single(reporter, 15, 5)
        self._feed_single(reporter, 6, 30)  # Old max ages out of the window.
        assert reporter.max_cqi(0) == 6

    def _feed_single(self, reporter, cqi, n):
        for i in range(n):
            reporter.ingest(CqiReport(wideband_cqi=cqi, subband_cqi=[cqi], time=i * 2e-3))

    def test_detector_unlatches_after_max_ages_out(self):
        # The property behind the measured ~80% TP: during a long
        # interference burst the clean max eventually leaves the window
        # and the detector stops flagging.
        reporter = SubbandCqiReporter(n_subbands=1, max_window=50)
        self._feed_single(reporter, 12, 50)
        self._feed_single(reporter, 4, 30)
        assert reporter.interference_detected(0)
        self._feed_single(reporter, 4, 60)
        assert not reporter.interference_detected(0)

    def test_mismatched_report_rejected(self):
        reporter = self._reporter()
        with pytest.raises(ValueError):
            reporter.ingest(CqiReport(wideband_cqi=5, subband_cqi=[5, 5, 5]))

    def test_latest(self):
        reporter = self._reporter()
        assert reporter.latest() is None
        report = CqiReport(wideband_cqi=5, subband_cqi=[5, 5])
        reporter.ingest(report)
        assert reporter.latest() is report

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SubbandCqiReporter(n_subbands=1, drop_fraction=1.5)
        with pytest.raises(ValueError):
            SubbandCqiReporter(n_subbands=1, consecutive_required=0)
