"""Regenerate tests/golden/figures.json in place.

Run this (and commit the diff, explaining why in the PR) when a change
is *supposed* to move the figure numbers::

    PYTHONPATH=src python tests/golden/regenerate.py [--jobs N]

Every entry's cell is re-evaluated through the sweep runner with the
params recorded in the golden file; tolerances are preserved.
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.experiments.sweep import SweepSpec, SweepTask, run_sweep

GOLDEN_PATH = pathlib.Path(__file__).parent / "figures.json"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=0)
    args = parser.parse_args()

    golden = json.loads(GOLDEN_PATH.read_text())
    entries = golden["entries"]
    spec = SweepSpec(
        "golden-regen",
        [SweepTask.make(e["scenario"], e["params"]) for e in entries],
    )
    result = run_sweep(spec, jobs=args.jobs)
    result.raise_on_failures()
    fresh = result.metrics_by_hash()
    for entry in entries:
        metrics = fresh[SweepTask.make(entry["scenario"], entry["params"]).config_hash]
        for name, check in entry["metrics"].items():
            check["value"] = metrics[name]
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"rewrote {GOLDEN_PATH} ({len(entries)} entries)")


if __name__ == "__main__":
    main()
