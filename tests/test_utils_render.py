"""Unit tests for repro.utils.render."""

import pytest

from repro.utils.render import ascii_plot, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "30" in lines[3]

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.14" in out

    def test_columns_aligned(self):
        out = format_table(["name", "v"], [["x", 1], ["longer", 2]])
        lines = out.splitlines()
        # All data rows have the separator at the same position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1


class TestAsciiPlot:
    def test_empty_data(self):
        assert ascii_plot([]) == "(no data)"

    def test_contains_marks(self):
        out = ascii_plot([(0.0, 0.0), (1.0, 1.0)], width=10, height=5)
        assert out.count("*") >= 2

    def test_labels_present(self):
        out = ascii_plot([(0, 0), (2, 4)], x_label="dist", y_label="tput")
        assert "dist" in out
        assert "tput" in out

    def test_flat_series_does_not_crash(self):
        out = ascii_plot([(0.0, 1.0), (1.0, 1.0)])
        assert "*" in out
