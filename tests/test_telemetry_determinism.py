"""Telemetry must never perturb results and must itself be deterministic.

Three guarantees, each load-bearing for reproducibility claims:

* identical seeds produce byte-identical metrics snapshots and trace
  JSONL (modulo the wall-clock fields);
* sweep-embedded telemetry snapshots are identical at any ``--jobs``
  level (cell-local collection, no cross-worker state);
* enabling telemetry leaves the simulation's own outputs bit-identical.
"""

import json

from repro.experiments.db_outage import run_db_outage
from repro.experiments.large_scale import fig9a_sweep_spec
from repro.experiments.sweep import canonical_json, run_sweep
from repro.obs import Telemetry, activated, disable
from repro.obs.trace import jsonl_without_wall


def teardown_module(module):
    disable()


def _traced_outage():
    tel = Telemetry(trace=True)
    with activated(tel):
        result = run_db_outage(seed=7, outages=[(60.0, 30.0)], timeout_prob=0.1)
    return tel, result


def _tiny_spec():
    return fig9a_sweep_spec(
        densities=(4,), seeds=(1,), techs=("LTE",), clients_per_ap=2, epochs=2
    )


class TestRunDeterminism:
    def test_metrics_snapshots_byte_identical(self):
        tel_a, _ = _traced_outage()
        tel_b, _ = _traced_outage()
        assert canonical_json(tel_a.snapshot()) == canonical_json(tel_b.snapshot())

    def test_trace_jsonl_identical_modulo_wall(self):
        tel_a, _ = _traced_outage()
        tel_b, _ = _traced_outage()
        rows_a = [json.loads(l) for l in tel_a.tracer.to_jsonl().strip().split("\n")]
        rows_b = [json.loads(l) for l in tel_b.tracer.to_jsonl().strip().split("\n")]
        assert jsonl_without_wall(rows_a) == jsonl_without_wall(rows_b)

    def test_wall_free_export_is_directly_identical(self):
        tel_a, _ = _traced_outage()
        tel_b, _ = _traced_outage()
        assert (
            tel_a.tracer.to_jsonl(include_wall=False)
            == tel_b.tracer.to_jsonl(include_wall=False)
        )


class TestTelemetryDoesNotPerturb:
    def test_db_outage_digest_bit_identical_under_telemetry(self):
        bare = run_db_outage(seed=3, outages=[(60.0, 30.0)], timeout_prob=0.2)
        with activated(Telemetry(trace=True, profile=True)):
            traced = run_db_outage(seed=3, outages=[(60.0, 30.0)], timeout_prob=0.2)
        assert traced.digest == bare.digest
        assert traced.timeline == bare.timeline

    def test_sweep_metrics_unchanged_by_collection(self):
        plain = run_sweep(_tiny_spec(), jobs=0)
        collected = run_sweep(_tiny_spec(), jobs=0, collect_telemetry=True)
        assert [r.metrics for r in plain.records] == [
            r.metrics for r in collected.records
        ]
        assert all(r.telemetry is None for r in plain.records)
        assert all(r.telemetry is not None for r in collected.records)


class TestSweepJobsInvariance:
    def test_snapshots_identical_inline_vs_two_workers(self, tmp_path):
        inline = run_sweep(_tiny_spec(), jobs=0, collect_telemetry=True)
        pooled = run_sweep(_tiny_spec(), jobs=2, collect_telemetry=True)
        snaps_inline = [canonical_json(r.telemetry) for r in inline.records]
        snaps_pooled = [canonical_json(r.telemetry) for r in pooled.records]
        assert snaps_inline == snaps_pooled
        # The instrumented scopes actually showed up in the cells.
        counters = inline.records[0].telemetry["counters"]
        assert any(k.startswith("scheduler.") for k in counters)
        assert any(k.startswith("lte.") for k in counters)

    def test_telemetry_survives_log_round_trip(self, tmp_path):
        out = tmp_path / "cells.jsonl"
        first = run_sweep(
            _tiny_spec(), jobs=0, collect_telemetry=True, out_path=out
        )
        logged = [json.loads(line) for line in out.read_text().splitlines()]
        assert logged[0]["telemetry"] == first.records[0].telemetry
        # Resume reuses the cached cell, telemetry included.
        resumed = run_sweep(
            _tiny_spec(), jobs=0, collect_telemetry=True, out_path=out,
            resume=True,
        )
        assert resumed.reused == len(resumed.records)
        assert resumed.records[0].telemetry == first.records[0].telemetry

    def test_plain_sweep_log_has_no_telemetry_key(self, tmp_path):
        out = tmp_path / "plain.jsonl"
        run_sweep(_tiny_spec(), jobs=0, out_path=out)
        logged = [json.loads(line) for line in out.read_text().splitlines()]
        assert all("telemetry" not in row for row in logged)
