"""Unit tests for the UE state machine and the eNodeB."""

import numpy as np
import pytest

from repro.lte.enb import EnodeB, RadioOffError
from repro.lte.scheduler import ProportionalFairScheduler
from repro.lte.ue import ConnectionState, NoUplinkGrantError, UserEquipment
from repro.phy.resource_grid import ResourceGrid


class _Node:
    def __init__(self, x=0.0, y=0.0):
        self.x, self.y = x, y


def _enb():
    return EnodeB(cell_id=1, node=_Node(), scheduler=ProportionalFairScheduler())


def _ue(ue_id=0):
    return UserEquipment(ue_id=ue_id, node=_Node(100.0, 0.0))


def _up(enb):
    return enb.start_radio(473e6, ResourceGrid(5e6), max_ue_power_dbm=20.0)


class TestUeLifecycle:
    def test_starts_idle(self):
        assert _ue().state is ConnectionState.IDLE

    def test_attach_from_search(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        ue.start_cell_search()
        enb.admit(ue)
        assert ue.state is ConnectionState.CONNECTED
        assert ue.serving_cell_id == 1

    def test_double_attach_rejected(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        with pytest.raises(ValueError):
            ue.attach(2, enb.sib)

    def test_sib_caps_ue_power(self):
        enb, ue = _enb(), _ue()
        enb.start_radio(473e6, ResourceGrid(5e6), max_ue_power_dbm=17.0)
        enb.admit(ue)
        assert ue.tx_power_dbm == 17.0

    def test_detach_clears_state(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        ue.detach()
        assert ue.state is ConnectionState.IDLE
        assert ue.sib is None


class TestUplinkGrantDiscipline:
    def test_no_grant_no_transmission(self):
        ue = _ue()
        with pytest.raises(NoUplinkGrantError):
            ue.transmit_uplink()

    def test_grant_enables_one_transmission(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        ue.grant_uplink()
        assert ue.can_transmit
        ue.transmit_uplink()
        with pytest.raises(NoUplinkGrantError):
            ue.transmit_uplink()  # The grant was consumed.

    def test_grant_while_idle_rejected(self):
        with pytest.raises(NoUplinkGrantError):
            _ue().grant_uplink()

    def test_radio_off_instantly_silences_clients(self):
        # The channel-vacate property of Section 4.2.
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        ue.grant_uplink()
        enb.stop_radio()
        assert not ue.can_transmit
        with pytest.raises(NoUplinkGrantError):
            ue.transmit_uplink()

    def test_cqi_report_requires_connection(self):
        ue = _ue()
        with pytest.raises(NoUplinkGrantError):
            ue.report_cqi([10.0])

    def test_prach_counts(self):
        ue = _ue()
        rng = np.random.default_rng(0)
        shift = ue.send_prach(rng)
        assert 0 <= shift < 64
        assert ue.prach_sent_count == 1


class TestEnodeB:
    def test_radio_off_by_default(self):
        assert not _enb().radio_on

    def test_start_radio_builds_sib(self):
        enb = _enb()
        sib = _up(enb)
        assert sib.cell_id == 1
        assert sib.downlink_earfcn == sib.uplink_earfcn  # TDD.
        assert enb.radio_on

    def test_admit_requires_radio(self):
        with pytest.raises(RadioOffError):
            _enb().admit(_ue())

    def test_stop_radio_detaches_all(self):
        enb = _enb()
        _up(enb)
        ues = [_ue(i) for i in range(3)]
        for ue in ues:
            enb.admit(ue)
        enb.stop_radio()
        assert enb.n_attached == 0
        assert all(u.state is ConnectionState.IDLE for u in ues)

    def test_release_single_client(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        enb.release(ue.ue_id)
        assert enb.n_attached == 0
        assert ue.state is ConnectionState.IDLE

    def test_allowed_subchannels_default_all(self):
        enb = _enb()
        _up(enb)
        assert enb.allowed_subchannels == list(range(13))

    def test_allowed_subchannels_restriction(self):
        enb = _enb()
        _up(enb)
        enb.set_allowed_subchannels([2, 5, 9])
        assert enb.allowed_subchannels == [2, 5, 9]
        enb.set_allowed_subchannels(None)
        assert enb.allowed_subchannels == list(range(13))

    def test_unknown_subchannel_rejected(self):
        enb = _enb()
        _up(enb)
        with pytest.raises(ValueError):
            enb.set_allowed_subchannels([13])

    def test_restriction_requires_carrier(self):
        with pytest.raises(RadioOffError):
            _enb().set_allowed_subchannels([0])

    def test_schedule_epoch_serves_and_grants(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        alloc = enb.schedule_epoch({0: float("inf")}, lambda c, k: 1e6)
        assert alloc.served_bits[0] > 0.0
        assert ue.can_transmit  # Got an uplink grant for ACKs.

    def test_schedule_epoch_rejects_unknown_client(self):
        enb = _enb()
        _up(enb)
        with pytest.raises(KeyError):
            enb.schedule_epoch({42: 1.0}, lambda c, k: 1e6)

    def test_schedule_epoch_requires_radio(self):
        with pytest.raises(RadioOffError):
            _enb().schedule_epoch({}, lambda c, k: 0.0)

    def test_schedule_respects_restriction(self):
        enb, ue = _enb(), _ue()
        _up(enb)
        enb.admit(ue)
        enb.set_allowed_subchannels([3])
        alloc = enb.schedule_epoch({0: float("inf")}, lambda c, k: 1e6)
        used = {sub for (c, sub) in alloc.time_fraction}
        assert used == {3}

    def test_rach_solicitation_counter(self):
        enb = _enb()
        enb.solicit_prach()
        enb.solicit_prach()
        assert enb.rach_solicitations == 2
