"""Tests for the Section 7 extensions: channel aggregation and the hybrid
(per-provider centralized) control plane."""

import numpy as np
import pytest

from repro.core.aggregation import (
    BondedCarrier,
    lease_expiry,
    select_bonded_carrier,
)
from repro.core.channel_selection import (
    OCCUPANCY_CELLFI,
    OCCUPANCY_IDLE,
    OCCUPANCY_OTHER,
    OccupancyProbe,
)
from repro.core.interference.hybrid import HybridInterferenceManager
from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import AvailableSpectrumRequest, DeviceDescriptor, GeoLocation, PawsServer


def _response(withdrawn=()):
    database = SpectrumDatabase(US_CHANNEL_PLAN)
    for channel in withdrawn:
        database.withdraw_channel(channel)
    server = PawsServer(database)
    return server.available_spectrum(
        AvailableSpectrumRequest(
            device=DeviceDescriptor("agg-ap"),
            location=GeoLocation(0.0, 0.0),
            request_time=0.0,
        )
    )


class TestChannelAggregation:
    def test_bonds_four_us_channels_for_20mhz(self):
        carrier = select_bonded_carrier(
            _response(), US_CHANNEL_PLAN, OccupancyProbe(), 20e6
        )
        assert carrier is not None
        assert carrier.bandwidth_hz == 20e6
        assert len(carrier.channels) == 4
        assert carrier.channels == (14, 15, 16, 17)

    def test_falls_back_when_fragmented(self):
        # Withdraw every third channel: max contiguous run is 2 channels
        # (12 MHz), so only a 10 MHz carrier fits.
        withdrawn = [ch.number for ch in US_CHANNEL_PLAN.channels if ch.number % 3 == 0]
        carrier = select_bonded_carrier(
            _response(withdrawn), US_CHANNEL_PLAN, OccupancyProbe(), 20e6
        )
        assert carrier is not None
        assert carrier.bandwidth_hz == 10e6
        assert len(carrier.channels) == 2

    def test_no_fallback_mode(self):
        withdrawn = [ch.number for ch in US_CHANNEL_PLAN.channels if ch.number % 3 == 0]
        carrier = select_bonded_carrier(
            _response(withdrawn),
            US_CHANNEL_PLAN,
            OccupancyProbe(),
            20e6,
            allow_fallback=False,
        )
        assert carrier is None

    def test_prefers_idle_run(self):
        # Channels 14-17 overlap another technology; 18-21 are idle.
        def classify(channel):
            return OCCUPANCY_OTHER if channel <= 17 else OCCUPANCY_IDLE

        carrier = select_bonded_carrier(
            _response(), US_CHANNEL_PLAN, OccupancyProbe(classify), 20e6
        )
        assert carrier.channels == (18, 19, 20, 21)
        assert carrier.worst_occupancy == OCCUPANCY_IDLE

    def test_worst_occupancy_dominates_run(self):
        # One CellFi-occupied channel inside the run colours the whole run.
        def classify(channel):
            return OCCUPANCY_CELLFI if channel == 15 else OCCUPANCY_IDLE

        carrier = select_bonded_carrier(
            _response(), US_CHANNEL_PLAN, OccupancyProbe(classify), 20e6
        )
        # The selector skips to a fully idle placement.
        assert 15 not in carrier.channels

    def test_center_frequency_inside_run(self):
        carrier = select_bonded_carrier(
            _response(), US_CHANNEL_PLAN, OccupancyProbe(), 10e6
        )
        low = US_CHANNEL_PLAN.channel(carrier.channels[0]).low_hz
        high = US_CHANNEL_PLAN.channel(carrier.channels[-1]).high_hz
        assert low < carrier.center_hz < high

    def test_lease_expiry_is_earliest_member(self):
        response = _response()
        carrier = select_bonded_carrier(
            response, US_CHANNEL_PLAN, OccupancyProbe(), 20e6
        )
        expiry = lease_expiry(response, carrier)
        assert expiry == min(
            response.spec_for(ch).expires_at for ch in carrier.channels
        )

    def test_empty_response(self):
        withdrawn = [ch.number for ch in US_CHANNEL_PLAN.channels]
        assert (
            select_bonded_carrier(
                _response(withdrawn), US_CHANNEL_PLAN, OccupancyProbe(), 20e6
            )
            is None
        )


def _scenario(seed=13, n_aps=6):
    rngs = RngStreams(seed)
    channel = CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(7.0, seed=seed)
    )
    topo = random_topology(
        rngs.stream("topo"), n_aps=n_aps, clients_per_ap=4, client_range_m=800.0
    )
    topo = reassociate_strongest(topo, channel.loss_db)
    net = LteNetworkSimulator(topo, ResourceGrid(5e6), channel, rngs.fork("net"))
    return topo, net


class TestHybridManager:
    def test_rejects_overlapping_providers(self):
        with pytest.raises(ValueError):
            HybridInterferenceManager(
                {"a": [0, 1], "b": [1, 2]}, 13, RngStreams(1)
            )

    def test_first_epoch_full_carrier(self):
        manager = HybridInterferenceManager({"a": [0], "b": [1]}, 13, RngStreams(1))
        decisions = manager.decide(0, None)
        assert decisions[0] == set(range(13))

    def test_members_of_one_provider_never_overlap(self):
        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        half = len(ap_ids) // 2
        providers = {"alpha": ap_ids[:half], "beta": ap_ids[half:]}
        manager = HybridInterferenceManager(providers, 13, RngStreams(2))
        demands = {c.client_id: float("inf") for c in topo.clients}
        results = net.run(6, manager, lambda e: demands)
        holdings = manager.holdings()
        for members in providers.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert not (holdings.get(a, set()) & holdings.get(b, set()))

    def test_split_respects_provider_holdings(self):
        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        providers = {"solo": ap_ids}
        manager = HybridInterferenceManager(providers, 13, RngStreams(3))
        demands = {c.client_id: float("inf") for c in topo.clients}
        net.run(5, manager, lambda e: demands)
        provider_set = manager.provider_holdings()["solo"]
        union = set()
        for subs in manager.holdings().values():
            union |= subs
        assert union <= provider_set

    def test_hybrid_not_worse_than_distributed(self):
        topo, net_hybrid = _scenario(seed=17, n_aps=6)
        ap_ids = [a.ap_id for a in topo.aps]
        providers = {"alpha": ap_ids[:3], "beta": ap_ids[3:]}
        demands = {c.client_id: float("inf") for c in topo.clients}

        hybrid = HybridInterferenceManager(providers, 13, RngStreams(4))
        hybrid_results = net_hybrid.run(10, hybrid, lambda e: demands)

        _, net_cellfi = _scenario(seed=17, n_aps=6)
        cellfi = CellFiInterferenceManager(ap_ids, 13, RngStreams(4))
        cellfi_results = net_cellfi.run(10, cellfi, lambda e: demands)

        def connected(results):
            return np.mean(
                [list(r.connected.values()) for r in results[5:]]
            )

        assert connected(hybrid_results) >= connected(cellfi_results) - 0.08

    def test_empty_provider_tolerated(self):
        topo, net = _scenario()
        ap_ids = [a.ap_id for a in topo.aps]
        providers = {"alpha": ap_ids, "ghost": []}
        manager = HybridInterferenceManager(providers, 13, RngStreams(5))
        demands = {c.client_id: float("inf") for c in topo.clients}
        results = net.run(3, manager, lambda e: demands)
        assert results  # No crash; ghost provider simply holds nothing.
