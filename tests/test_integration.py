"""Cross-module integration tests: full-system scenarios end to end."""

import numpy as np
import pytest

from repro.core.cellfi import CellFiAccessPoint
from repro.core.interference.manager import CellFiInterferenceManager
from repro.experiments.common import build_scenario
from repro.lte.network import LteNetworkSimulator
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import ConnectionState, UserEquipment
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.backlogged import saturated_demand_fn
from repro.traffic.flows import Flow, FlowTracker
from repro.traffic.web import generate_web_sessions
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import Incumbent, SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules


class _Node:
    def __init__(self, x, y):
        self.x, self.y = x, y


class TestMultiApControlPlane:
    """Several CellFi APs sharing one database, full lifecycle."""

    def _world(self, n_aps=3):
        sim = Simulator()
        database = SpectrumDatabase(US_CHANNEL_PLAN)
        paws = PawsServer(database)
        compliance = EtsiComplianceRules()
        timing = ReacquisitionTiming(
            radio_off_latency_s=1.0, ap_reboot_s=4.0, cell_search_s=2.0
        )
        aps = []
        for i in range(n_aps):
            ap = CellFiAccessPoint(
                sim=sim, paws=paws, x=600.0 * i, y=0.0,
                serial=f"ap-{i}", timing=timing, compliance=compliance,
            )
            ue = UserEquipment(ue_id=i, node=_Node(600.0 * i + 80.0, 0.0))
            ap.register_client(ue)
            aps.append((ap, ue))
        return sim, database, compliance, aps

    def test_all_aps_come_up_and_serve(self):
        sim, database, compliance, aps = self._world()
        for ap, _ in aps:
            ap.start()
        sim.run(until=20.0)
        assert all(ap.radio_on for ap, _ in aps)
        assert all(
            ue.state is ConnectionState.CONNECTED for _, ue in aps
        )
        assert compliance.compliant

    def test_local_incumbent_only_displaces_nearby_ap(self):
        sim, database, compliance, aps = self._world()
        for ap, _ in aps:
            ap.start()
        sim.run(until=20.0)
        channel = aps[0][0].selector.current_channel
        # A microphone near AP 0 only; APs 1 and 2 are outside its contour.
        database.register_incumbent(
            Incumbent("mic", channel, x=0.0, y=0.0, protection_radius_m=300.0,
                      active_from=sim.now)
        )
        sim.run(until=sim.now + 15.0)
        assert aps[0][0].selector.current_channel != channel
        # The distant APs keep their channel (database is location-aware).
        assert aps[2][0].selector.current_channel == channel
        assert compliance.compliant

    def test_every_ap_holds_independent_lease(self):
        sim, database, compliance, aps = self._world()
        for ap, _ in aps:
            ap.start()
        sim.run(until=20.0)
        serials = {ap.device.serial_number for ap, _ in aps}
        assert len(serials) == 3
        assert database.query_count >= 3


class TestDataControlSplitConsistency:
    """The epoch simulator and the event-driven control plane agree."""

    def test_cellfi_network_converges_and_stays_connected(self):
        scenario = build_scenario(seed=21, n_aps=8, clients_per_ap=5)
        net = LteNetworkSimulator(
            scenario.topology, scenario.grid(), scenario.channel,
            scenario.rngs.fork("net"),
        )
        manager = CellFiInterferenceManager(
            scenario.ap_ids, net.grid.n_subchannels, scenario.rngs.fork("mgr")
        )
        results = net.run(12, manager, saturated_demand_fn(scenario.topology))
        early = np.mean(list(results[1].connected.values()))
        late = np.mean(
            [np.mean(list(r.connected.values())) for r in results[8:]]
        )
        assert late >= early - 0.05  # Convergence must not degrade coverage.
        assert late >= 0.85

    def test_hop_rate_decays_after_convergence(self):
        scenario = build_scenario(seed=22, n_aps=8, clients_per_ap=5)
        net = LteNetworkSimulator(
            scenario.topology, scenario.grid(), scenario.channel,
            scenario.rngs.fork("net"),
        )
        manager = CellFiInterferenceManager(
            scenario.ap_ids, net.grid.n_subchannels, scenario.rngs.fork("mgr")
        )
        demand = saturated_demand_fn(scenario.topology)
        net.run(6, manager, demand)
        early_hops = manager.stats.total_hops
        observations = None
        # Continue for 6 more epochs by re-running through the policy.
        results = net.run(6, manager, demand)
        late_hops = manager.stats.total_hops - early_hops
        # The paper: "the vast majority of access points only hop very few
        # times"; steady-state hop rate must not exceed the initial one.
        assert late_hops <= max(early_hops, 3)


class TestWebWorkloadEndToEnd:
    def test_lte_family_drains_offered_load(self):
        scenario = build_scenario(seed=23, n_aps=4, clients_per_ap=3)
        net = LteNetworkSimulator(
            scenario.topology, scenario.grid(), scenario.channel,
            scenario.rngs.fork("net"),
        )
        manager = CellFiInterferenceManager(
            scenario.ap_ids, net.grid.n_subchannels, scenario.rngs.fork("mgr")
        )
        client_ids = [c.client_id for c in scenario.topology.clients]
        pages = generate_web_sessions(
            client_ids, 10.0, scenario.rngs.stream("web")
        )
        tracker = FlowTracker()
        cursor = 0
        observations = None
        for epoch in range(20):  # Twice the arrival horizon: time to drain.
            t0, t1 = float(epoch), float(epoch + 1)
            while cursor < len(pages) and pages[cursor].arrival_s < t1:
                page = pages[cursor]
                tracker.arrive(
                    Flow(page.client_id, page.arrival_s, page.total_bytes * 8.0)
                )
                cursor += 1
            demands = {cid: tracker.queued_bits(cid) for cid in client_ids}
            allowed = manager.decide(epoch, observations)
            result = net.run_epoch(epoch, allowed, demands)
            observations = result.observations
            for cid, bits in result.served_bits.items():
                if bits > 0.0:
                    tracker.serve(cid, bits, t0, t1)
        # Most pages complete; completion times are sane.
        total = len(tracker.completed) + tracker.in_flight()
        assert total == len(pages)
        assert len(tracker.completed) / total >= 0.7
        for flow in tracker.completed:
            assert flow.completion_time_s >= 0.0


class TestSeedRobustness:
    """The headline ordering must hold across seeds, not on a lucky draw."""

    def test_cellfi_beats_lte_across_seeds(self):
        from repro.baselines.plain_lte import PlainLtePolicy

        wins = 0
        seeds = (101, 202, 303)
        for seed in seeds:
            scenario = build_scenario(seed=seed, n_aps=8, clients_per_ap=5)
            demands = saturated_demand_fn(scenario.topology)

            def run(policy_factory, label):
                net = LteNetworkSimulator(
                    scenario.topology, scenario.grid(), scenario.channel,
                    scenario.rngs.fork(label),
                )
                policy = policy_factory(net)
                results = net.run(10, policy, demands)
                return np.mean(
                    [np.mean(list(r.connected.values())) for r in results[5:]]
                )

            cellfi = run(
                lambda net: CellFiInterferenceManager(
                    scenario.ap_ids, net.grid.n_subchannels,
                    scenario.rngs.fork("mgr"),
                ),
                "cellfi",
            )
            lte = run(
                lambda net: PlainLtePolicy(
                    scenario.ap_ids, net.grid.n_subchannels
                ),
                "lte",
            )
            if cellfi >= lte - 1e-9:
                wins += 1
        assert wins == len(seeds), f"CellFi lost on {len(seeds) - wins} seed(s)"
