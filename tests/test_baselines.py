"""Unit tests for the baseline policies and the oracle allocators."""

import numpy as np
import pytest

from repro.baselines.oracle import (
    IsolationOracle,
    OracleAllocator,
    build_conflict_graph,
)
from repro.baselines.plain_lte import PlainLtePolicy
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import (
    AccessPointSite,
    ClientSite,
    Topology,
    random_topology,
    reassociate_strongest,
)


def _net(topology, seed=1):
    return LteNetworkSimulator(
        topology,
        ResourceGrid(5e6),
        CompositeChannel(UrbanHataPathLoss()),
        RngStreams(seed),
    )


def _clustered_pair(separation_m):
    aps = [AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, separation_m, 0.0)]
    clients = [
        ClientSite(0, 100.0, 0.0, ap_id=0),
        ClientSite(1, separation_m - 100.0, 0.0, ap_id=1),
    ]
    return Topology(area_m=separation_m + 200.0, aps=aps, clients=clients)


class TestPlainLte:
    def test_always_full_carrier(self):
        policy = PlainLtePolicy([0, 1, 2], 13)
        decisions = policy.decide(0, None)
        assert all(d == set(range(13)) for d in decisions.values())

    def test_returns_copies(self):
        policy = PlainLtePolicy([0], 13)
        decisions = policy.decide(0, None)
        decisions[0].clear()
        assert policy.decide(1, None)[0] == set(range(13))

    def test_validation(self):
        with pytest.raises(ValueError):
            PlainLtePolicy([0], 0)


class TestConflictGraph:
    def test_close_cells_conflict(self):
        net = _net(_clustered_pair(600.0))
        graph = build_conflict_graph(net)
        assert graph.has_edge(0, 1)

    def test_distant_cells_do_not_conflict(self):
        # Hata loss at ~9 km puts the interferer far below noise.
        net = _net(_clustered_pair(9000.0))
        graph = build_conflict_graph(net)
        assert not graph.has_edge(0, 1)

    def test_all_aps_are_nodes(self):
        net = _net(_clustered_pair(600.0))
        graph = build_conflict_graph(net)
        assert set(graph.nodes) == {0, 1}


class TestIsolationOracle:
    def test_conflict_free(self):
        rngs = RngStreams(3)
        topo = random_topology(rngs.stream("t"), n_aps=6, clients_per_ap=3)
        net = _net(topo, seed=3)
        oracle = IsolationOracle(net, 13)
        assert oracle.is_conflict_free()

    def test_all_subchannels_used_when_isolated(self):
        net = _net(_clustered_pair(9000.0))
        oracle = IsolationOracle(net, 13)
        assert oracle.allocation[0] == set(range(13))
        assert oracle.allocation[1] == set(range(13))

    def test_conflicting_pair_splits_carrier(self):
        net = _net(_clustered_pair(600.0))
        oracle = IsolationOracle(net, 13)
        assert not (oracle.allocation[0] & oracle.allocation[1])
        total = len(oracle.allocation[0]) + len(oracle.allocation[1])
        assert total == 13  # Maximal.

    def test_decide_interface(self):
        net = _net(_clustered_pair(600.0))
        oracle = IsolationOracle(net, 13)
        decisions = oracle.decide(0, None)
        assert decisions == oracle.allocation

    def test_validation(self):
        net = _net(_clustered_pair(600.0))
        with pytest.raises(ValueError):
            IsolationOracle(net, 0)


class TestPfOracle:
    def test_at_least_isolation_quality(self):
        # Local search starts from the isolation solution and only accepts
        # improvements; realised throughput must not regress.
        rngs = RngStreams(5)
        topo = random_topology(rngs.stream("t"), n_aps=5, clients_per_ap=3)
        topo = reassociate_strongest(
            topo, CompositeChannel(UrbanHataPathLoss()).loss_db
        )
        demands = {c.client_id: float("inf") for c in topo.clients}

        def run_with(policy_cls):
            net = _net(topo, seed=5)
            policy = policy_cls(net, 13)
            results = net.run(6, policy, lambda e: demands)
            return np.mean(
                [sum(r.throughput_bps.values()) for r in results[2:]]
            )

        assert run_with(OracleAllocator) >= 0.95 * run_with(IsolationOracle)

    def test_isolated_cells_get_everything(self):
        net = _net(_clustered_pair(9000.0))
        oracle = OracleAllocator(net, 13)
        assert oracle.allocation[0] == set(range(13))
        assert oracle.allocation[1] == set(range(13))

    def test_static_decisions(self):
        net = _net(_clustered_pair(600.0))
        oracle = OracleAllocator(net, 13)
        first = oracle.decide(0, None)
        second = oracle.decide(5, None)
        assert first == second

    def test_empty_cell_gets_no_special_treatment(self):
        aps = [AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, 500.0, 0.0)]
        clients = [ClientSite(0, 100.0, 0.0, ap_id=0)]
        topo = Topology(area_m=700.0, aps=aps, clients=clients)
        net = _net(topo)
        oracle = OracleAllocator(net, 13)
        # The serving cell should take the whole carrier for its client.
        assert len(oracle.allocation[0]) == 13
