"""Unit tests for distributed share calculation (paper Section 5.2)."""

import pytest

from repro.core.interference.share import (
    compute_share,
    per_client_share,
    shares_feasible,
)


class TestComputeShare:
    def test_sole_ap_gets_everything(self):
        # N_i == NP_i -> S_i = S.
        assert compute_share(13, 6, 6) == 13

    def test_paper_formula(self):
        # S_i = floor(N_i * S / NP_i).
        assert compute_share(13, 6, 12) == 6
        assert compute_share(13, 3, 12) == 3

    def test_zero_clients_zero_share(self):
        assert compute_share(13, 0, 20) == 0

    def test_at_least_one_when_active(self):
        # Even heavily outnumbered, a serving AP keeps one subchannel.
        assert compute_share(13, 1, 100) == 1

    def test_contender_estimate_clamped_to_own(self):
        # An AP always hears its own clients: NP < N is impossible and the
        # code must treat it as NP = N.
        assert compute_share(13, 6, 2) == 13

    def test_share_never_exceeds_carrier(self):
        assert compute_share(13, 50, 50) == 13

    def test_rounding_is_conservative(self):
        # 5 * 13 / 12 = 5.42 -> 5 (floor, not round).
        assert compute_share(13, 5, 12) == 5

    def test_neighbourhood_shares_fit(self):
        # All APs in one collision domain: their shares must fit in S.
        total_clients = 18
        shares = [
            compute_share(13, n, total_clients) for n in (6, 6, 6)
        ]
        assert shares_feasible(shares, 13)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_share(0, 1, 1)
        with pytest.raises(ValueError):
            compute_share(13, -1, 1)
        with pytest.raises(ValueError):
            compute_share(13, 1, -1)


class TestPerClientShare:
    def test_quantum(self):
        assert per_client_share(13, 13) == pytest.approx(1.0)
        assert per_client_share(13, 26) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            per_client_share(13, 0)
        with pytest.raises(ValueError):
            per_client_share(0, 5)


class TestFeasibility:
    def test_feasible(self):
        assert shares_feasible([4, 4, 5], 13)

    def test_infeasible(self):
        assert not shares_feasible([7, 7], 13)

    def test_empty(self):
        assert shares_feasible([], 13)
