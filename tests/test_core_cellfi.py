"""Integration tests for the CellFiAccessPoint orchestration."""

import pytest

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import ConnectionState, UserEquipment
from repro.sim.engine import Simulator
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules


class _Node:
    def __init__(self, x, y):
        self.x, self.y = x, y


FAST_TIMING = ReacquisitionTiming(
    radio_off_latency_s=1.0, ap_reboot_s=5.0, cell_search_s=3.0
)


def _world(timing=FAST_TIMING):
    sim = Simulator()
    database = SpectrumDatabase(US_CHANNEL_PLAN)
    paws = PawsServer(database)
    compliance = EtsiComplianceRules()
    ap = CellFiAccessPoint(
        sim=sim, paws=paws, x=0.0, y=0.0, serial="it-ap",
        timing=timing, compliance=compliance,
    )
    return sim, database, ap, compliance


class TestBringUp:
    def test_radio_up_after_reboot_delay(self):
        sim, database, ap, _ = _world()
        ap.start()
        assert not ap.radio_on
        sim.run(until=6.0)
        assert ap.radio_on

    def test_client_attaches_after_cell_search(self):
        sim, database, ap, _ = _world()
        ue = UserEquipment(ue_id=0, node=_Node(100.0, 0.0))
        ap.register_client(ue)
        ap.start()
        sim.run(until=6.0)
        assert ue.state is ConnectionState.SEARCHING
        sim.run(until=9.5)
        assert ue.state is ConnectionState.CONNECTED
        assert ap.connected_clients == 1

    def test_late_registered_client_attaches(self):
        sim, database, ap, _ = _world()
        ap.start()
        sim.run(until=6.0)
        ue = UserEquipment(ue_id=1, node=_Node(50.0, 0.0))
        ap.register_client(ue)
        sim.run(until=10.0)
        assert ue.state is ConnectionState.CONNECTED

    def test_sib_announces_database_power_cap(self):
        sim, database, ap, _ = _world()
        ap.start()
        sim.run(until=6.0)
        assert ap.enb.sib.max_ue_power_dbm == 20.0

    def test_compliance_clean_under_normal_operation(self):
        sim, database, ap, compliance = _world()
        ap.register_client(UserEquipment(ue_id=0, node=_Node(10.0, 0.0)))
        ap.start()
        sim.run(until=30.0)
        assert compliance.compliant


class TestVacateResume:
    def test_full_cycle(self):
        sim, database, ap, compliance = _world()
        ue = UserEquipment(ue_id=0, node=_Node(100.0, 0.0))
        ap.register_client(ue)
        ap.start()
        # Only one channel in the world.
        sim.run(until=10.0)
        channel = ap.selector.current_channel
        for tv in US_CHANNEL_PLAN.channels:
            if tv.number != channel:
                database.withdraw_channel(tv.number)
        sim.run(until=20.0)
        assert ap.radio_on

        database.withdraw_channel(channel)
        sim.run(until=25.0)
        assert not ap.radio_on
        assert ue.state is ConnectionState.IDLE  # Instantly silenced.

        database.restore_channel(channel)
        sim.run(until=40.0)
        assert ap.radio_on
        assert ue.state is ConnectionState.CONNECTED
        assert compliance.compliant

    def test_withdraw_during_reboot_cancels_start(self):
        sim, database, ap, _ = _world()
        ap.start()
        sim.run(until=2.0)  # Mid-reboot.
        for tv in US_CHANNEL_PLAN.channels:
            database.withdraw_channel(tv.number)
        sim.run(until=10.0)
        assert not ap.radio_on

    def test_timeline_records_events(self):
        sim, database, ap, _ = _world()
        ap.start()
        sim.run(until=10.0)
        events = [name for _, name in ap.timeline]
        assert "ap-power-on" in events
        assert "radio-on" in events
