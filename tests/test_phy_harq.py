"""Unit tests for the HARQ model."""

import numpy as np
import pytest

from repro.phy.harq import (
    MAX_TRANSMISSIONS,
    TARGET_BLER,
    HarqProcess,
    block_error_rate,
    delivery_probability,
    expected_attempts,
    first_attempt_failure_rate,
    harq_goodput_scale,
)
from repro.phy.mcs import LTE_CQI_TABLE


class TestBlerCurve:
    def test_anchored_at_threshold(self):
        for entry in LTE_CQI_TABLE:
            assert block_error_rate(entry.min_sinr_db, entry.cqi) == pytest.approx(
                TARGET_BLER, abs=1e-6
            )

    def test_monotone_decreasing_in_sinr(self):
        for sinr in range(-10, 25):
            assert block_error_rate(float(sinr), 7) >= block_error_rate(
                float(sinr) + 1.0, 7
            )

    def test_deep_fade_is_certain_loss(self):
        assert block_error_rate(-40.0, 7) == pytest.approx(1.0, abs=1e-6)

    def test_strong_signal_is_error_free(self):
        assert block_error_rate(60.0, 7) == pytest.approx(0.0, abs=1e-6)

    def test_cqi0_always_fails(self):
        assert block_error_rate(30.0, 0) == 1.0

    def test_higher_cqi_needs_more_sinr(self):
        sinr = 10.0
        assert block_error_rate(sinr, 12) > block_error_rate(sinr, 5)


class TestClosedForms:
    def test_delivery_probability_at_threshold_is_high(self):
        # One retransmission with chase combining nearly always recovers
        # a block transmitted at the 10% BLER point.
        for entry in LTE_CQI_TABLE:
            assert delivery_probability(entry.min_sinr_db, entry.cqi) > 0.99

    def test_expected_attempts_bounds(self):
        for sinr in (-5.0, 0.0, 10.0, 30.0):
            attempts = expected_attempts(sinr, 7)
            assert 1.0 <= attempts <= MAX_TRANSMISSIONS

    def test_expected_attempts_one_at_high_sinr(self):
        assert expected_attempts(40.0, 7) == pytest.approx(1.0, abs=1e-4)

    def test_goodput_scale_range(self):
        for sinr in (-10.0, 0.0, 5.9, 20.0):
            assert 0.0 <= harq_goodput_scale(sinr, 7) <= 1.0

    def test_goodput_scale_is_one_at_high_sinr(self):
        assert harq_goodput_scale(40.0, 7) == pytest.approx(1.0, abs=1e-4)

    def test_goodput_scale_zero_for_cqi0(self):
        assert harq_goodput_scale(10.0, 0) == 0.0

    def test_first_attempt_failure_uses_link_adaptation(self):
        # At exactly a CQI threshold link adaptation picks that CQI, so the
        # first-attempt failure rate equals the BLER target.
        assert first_attempt_failure_rate(5.9) == pytest.approx(TARGET_BLER, abs=1e-6)


class TestHarqProcess:
    def test_statistics_match_closed_form(self):
        rng = np.random.default_rng(7)
        process = HarqProcess(rng=rng)
        sinr, cqi = 5.9, 7
        n = 3000
        for _ in range(n):
            process.deliver_block(sinr, cqi)
        assert process.blocks_sent == n
        empirical_delivery = process.blocks_delivered / n
        assert empirical_delivery == pytest.approx(
            delivery_probability(sinr, cqi), abs=0.01
        )
        assert process.retransmission_fraction == pytest.approx(
            block_error_rate(sinr, cqi), abs=0.02
        )

    def test_result_flags(self):
        rng = np.random.default_rng(1)
        process = HarqProcess(rng=rng)
        result = process.deliver_block(40.0, 7)
        assert result.delivered
        assert result.transmissions == 1
        assert not result.used_retransmission

    def test_hopeless_block_exhausts_budget(self):
        rng = np.random.default_rng(1)
        process = HarqProcess(rng=rng)
        result = process.deliver_block(-40.0, 1)
        assert not result.delivered
        assert result.transmissions == MAX_TRANSMISSIONS

    def test_empty_process_fraction(self):
        assert HarqProcess(rng=np.random.default_rng(0)).retransmission_fraction == 0.0
