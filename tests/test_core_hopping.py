"""Unit tests for the subchannel hopper (paper Section 5.3, Figure 4)."""

import numpy as np
import pytest

from repro.core.interference.hopping import (
    ClientSense,
    HopperConfig,
    SubchannelHopper,
)

N_SUBS = 13


def _hopper(**kwargs):
    config = HopperConfig(n_subchannels=N_SUBS, **kwargs)
    return SubchannelHopper(config, np.random.default_rng(7))


def _sense(
    interfered=(),
    fractions=None,
    cqi=10,
    low_cqi_on=(),
):
    """Build a ClientSense with selective interference flags."""
    interfered = set(interfered)
    low = set(low_cqi_on)
    return ClientSense(
        subband_cqi=[3 if k in low else cqi for k in range(N_SUBS)],
        max_subband_cqi=[cqi] * N_SUBS,
        interference_detected=[k in interfered for k in range(N_SUBS)],
        scheduled_fraction=dict(fractions or {}),
    )


class TestInitialisation:
    def test_initial_pick_has_target_size(self):
        hopper = _hopper()
        holdings = hopper.step(5, {})
        assert len(holdings) == 5
        assert holdings <= set(range(N_SUBS))

    def test_initial_buckets_positive(self):
        hopper = _hopper()
        hopper.step(5, {})
        assert all(b > 0.0 for b in hopper.buckets.values())

    def test_zero_share_holds_nothing(self):
        hopper = _hopper()
        assert hopper.step(0, {}) == set()

    def test_share_out_of_range_rejected(self):
        hopper = _hopper()
        with pytest.raises(ValueError):
            hopper.step(N_SUBS + 1, {})
        with pytest.raises(ValueError):
            hopper.step(-1, {})

    def test_bucket_mean_configurable(self):
        rng = np.random.default_rng(0)
        config = HopperConfig(n_subchannels=N_SUBS, bucket_mean=10.0)
        draws = [
            SubchannelHopper(config, np.random.default_rng(i))._draw_bucket()
            for i in range(500)
        ]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.15)


class TestBucketDynamics:
    def test_clean_subchannels_keep_buckets(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(3, {})
        before = dict(hopper.buckets)
        held = sorted(hopper.buckets)
        senses = {0: _sense(fractions={held[0]: 1.0})}
        hopper.step(3, senses)
        assert hopper.buckets == before

    def test_interference_drains_bucket_by_fraction(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        (held,) = hopper.buckets
        start = hopper.buckets[held]
        senses = {0: _sense(interfered=[held], fractions={held: 0.4})}
        hopper.step(1, senses)
        # Either it drained by 0.4 or (if it went <= 0) the hop happened.
        if held in hopper.buckets:
            assert hopper.buckets[held] == pytest.approx(start - 0.4)

    def test_empty_bucket_triggers_hop(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        (held,) = hopper.buckets
        hopper.buckets[held] = 0.3
        senses = {0: _sense(interfered=[held], fractions={held: 1.0})}
        for _ in range(20):
            hopper.step(1, senses)
            if held not in hopper.buckets:
                break
            senses = {0: _sense(interfered=[held], fractions={held: 1.0})}
        assert held not in hopper.buckets
        assert hopper.hop_count >= 1
        assert len(hopper.buckets) == 1  # Replacement acquired.

    def test_new_ap_eventually_wins_contended_subchannel(self):
        # The bucket rule guarantees finite occupancy under persistent
        # interference reports, no matter how long the AP has held it.
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        (held,) = hopper.buckets
        epochs = 0
        while held in hopper.buckets and epochs < 1000:
            senses = {0: _sense(interfered=[held], fractions={held: 1.0})}
            hopper.step(1, senses)
            epochs += 1
        assert held not in hopper.buckets


class TestUtilitySelection:
    def test_hop_prefers_high_cqi_subchannel(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        (held,) = hopper.buckets
        hopper.buckets[held] = 0.1
        # Subchannel `best` has much better CQI than everything else.
        best = (held + 1) % N_SUBS
        cqi = [1] * N_SUBS
        cqi[best] = 15
        sense = ClientSense(
            subband_cqi=cqi,
            max_subband_cqi=cqi,
            interference_detected=[k == held for k in range(N_SUBS)],
            scheduled_fraction={held: 1.0},
        )
        hopper.step(1, {0: sense})
        assert best in hopper.buckets

    def test_hop_avoids_flagged_subchannel(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        (held,) = hopper.buckets
        hopper.buckets[held] = 0.1
        flagged = (held + 1) % N_SUBS
        clean = (held + 2) % N_SUBS
        cqi = [1] * N_SUBS
        cqi[flagged] = 15
        cqi[clean] = 14
        sense = ClientSense(
            subband_cqi=cqi,
            max_subband_cqi=cqi,
            interference_detected=[k == flagged or k == held for k in range(N_SUBS)],
            scheduled_fraction={held: 1.0},
        )
        hopper.step(1, {0: sense})
        assert clean in hopper.buckets
        assert flagged not in hopper.buckets


class TestResize:
    def test_share_growth_adds_subchannels(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(2, {})
        hopper.step(5, {0: _sense()})
        assert len(hopper.buckets) == 5

    def test_share_shrink_drops_subchannels(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(8, {})
        hopper.step(3, {0: _sense()})
        assert len(hopper.buckets) == 3

    def test_resize_to_full_carrier(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.step(1, {})
        hopper.step(N_SUBS, {0: _sense()})
        assert hopper.holdings == set(range(N_SUBS))


class TestChannelReuse:
    def test_packs_to_lower_index(self):
        hopper = _hopper(reuse_persistence_epochs=2)
        # Force holdings to high indices.
        hopper.buckets = {10: 5.0, 11: 5.0, 12: 5.0}
        senses = {0: _sense(fractions={10: 0.3, 11: 0.3, 12: 0.3})}
        for _ in range(6):
            hopper.step(3, senses)
        assert hopper.reuse_moves >= 1
        assert min(hopper.buckets) < 10

    def test_no_packing_when_disabled(self):
        hopper = _hopper(reuse_enabled=False)
        hopper.buckets = {10: 5.0, 11: 5.0, 12: 5.0}
        senses = {0: _sense(fractions={10: 0.3, 11: 0.3, 12: 0.3})}
        for _ in range(6):
            hopper.step(3, senses)
        assert hopper.reuse_moves == 0
        assert hopper.holdings == {10, 11, 12}

    def test_no_packing_onto_interfered_subchannel(self):
        hopper = _hopper(reuse_persistence_epochs=2)
        hopper.buckets = {11: 5.0, 12: 5.0}
        # All low subchannels are persistently flagged as interfered.
        low = list(range(11))
        senses = {0: _sense(interfered=low, fractions={11: 0.5, 12: 0.5})}
        for _ in range(8):
            hopper.step(2, senses)
        assert hopper.reuse_moves == 0
        assert hopper.holdings == {11, 12}

    def test_packing_needs_persistence(self):
        hopper = _hopper(reuse_persistence_epochs=4)
        hopper.buckets = {12: 5.0}
        senses = {0: _sense(fractions={12: 1.0})}
        hopper.step(1, senses)
        hopper.step(1, senses)
        assert hopper.reuse_moves == 0  # Not yet persistent enough.


class TestConfigValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            HopperConfig(n_subchannels=0)
        with pytest.raises(ValueError):
            HopperConfig(n_subchannels=13, bucket_mean=0.0)
        with pytest.raises(ValueError):
            HopperConfig(n_subchannels=13, reuse_persistence_epochs=0)
