"""Scalar vs vectorized epoch backends: bit-for-bit equivalence.

The vectorized backend is only allowed to exist because it is *exactly*
the scalar reference implementation, faster: same RNG draw order, same
floating-point operation order where it matters, same quantisation.
These tests compare complete epoch outputs with ``==`` (no tolerances) on
a seeded 20-cell topology.
"""

import numpy as np
import pytest

from repro.lte.network import (
    BACKEND_SCALAR,
    BACKEND_VECTORIZED,
    AllSubchannelsPolicy,
    LteNetworkSimulator,
)
from repro.phy.propagation import (
    CompositeChannel,
    GainMatrixCache,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest

N_CELLS = 20
CLIENTS_PER_AP = 4
SEED = 42


def make_channel():
    return CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(sigma_db=7.0, seed=SEED)
    )


def make_topology(channel):
    rng = np.random.default_rng(SEED)
    topology = random_topology(
        rng,
        n_aps=N_CELLS,
        clients_per_ap=CLIENTS_PER_AP,
        area_m=2000.0,
        client_range_m=600.0,
    )
    return reassociate_strongest(topology, channel.loss_db)


def make_net(backend):
    channel = make_channel()
    topology = make_topology(channel)
    return LteNetworkSimulator(
        topology=topology,
        grid=ResourceGrid(5e6),
        channel=channel,
        rngs=RngStreams(SEED),
        backend=backend,
    )


class RotatingSubsetPolicy:
    """Partial, shifting subchannel sets: exercises co-channel overlap,
    RLF weighting and idle subchannels -- the paths a full-carrier policy
    never touches."""

    def __init__(self, ap_ids, n_subchannels):
        self.ap_ids = list(ap_ids)
        self.n_subchannels = n_subchannels

    def decide(self, epoch_index, observations):
        return {
            ap: {
                (ap + epoch_index + k) % self.n_subchannels
                for k in range(3 + ap % 4)
            }
            for ap in self.ap_ids
        }


def mixed_demand_fn(topology):
    def fn(epoch):
        demands = {}
        for client in topology.clients:
            cid = client.client_id
            if cid % 5 == 0:
                demands[cid] = 0.0
            elif cid % 3 == 0:
                demands[cid] = 2e6
            else:
                demands[cid] = float("inf")
        return demands

    return fn


def assert_epochs_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.epoch_index == b.epoch_index
        assert a.served_bits == b.served_bits
        assert a.throughput_bps == b.throughput_bps
        assert a.connected == b.connected
        assert a.allocations.keys() == b.allocations.keys()
        for ap_id in a.allocations:
            assert a.allocations[ap_id].served_bits == b.allocations[ap_id].served_bits
            assert (
                a.allocations[ap_id].time_fraction
                == b.allocations[ap_id].time_fraction
            )
        assert a.observations.keys() == b.observations.keys()
        for ap_id in a.observations:
            oa, ob = a.observations[ap_id], b.observations[ap_id]
            assert oa.n_active_clients == ob.n_active_clients
            assert oa.estimated_contenders == ob.estimated_contenders
            assert oa.clients.keys() == ob.clients.keys()
            for cid in oa.clients:
                ca, cb = oa.clients[cid], ob.clients[cid]
                assert ca.subband_cqi == cb.subband_cqi
                assert ca.max_subband_cqi == cb.max_subband_cqi
                assert ca.interference_detected == cb.interference_detected
                assert ca.scheduled_fraction == cb.scheduled_fraction


class TestBackendSelection:
    def test_default_backend_is_vectorized(self):
        assert make_net(BACKEND_VECTORIZED).backend == BACKEND_VECTORIZED
        channel = make_channel()
        topology = make_topology(channel)
        net = LteNetworkSimulator(
            topology=topology,
            grid=ResourceGrid(5e6),
            channel=channel,
            rngs=RngStreams(SEED),
        )
        assert net.backend == BACKEND_VECTORIZED

    def test_unknown_backend_rejected(self):
        channel = make_channel()
        topology = make_topology(channel)
        with pytest.raises(ValueError):
            LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=channel,
                rngs=RngStreams(SEED),
                backend="gpu",
            )


class TestBitForBitEquivalence:
    def test_saturated_full_carrier(self):
        nets = {b: make_net(b) for b in (BACKEND_SCALAR, BACKEND_VECTORIZED)}
        results = {}
        for backend, net in nets.items():
            policy = AllSubchannelsPolicy(
                [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
            )
            demands = {c.client_id: float("inf") for c in net.topology.clients}
            results[backend] = net.run(2, policy, lambda e: dict(demands))
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_VECTORIZED]
        )

    def test_partial_subsets_and_mixed_demand(self):
        nets = {b: make_net(b) for b in (BACKEND_SCALAR, BACKEND_VECTORIZED)}
        results = {}
        for backend, net in nets.items():
            policy = RotatingSubsetPolicy(
                [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
            )
            results[backend] = net.run(
                3, policy, mixed_demand_fn(net.topology)
            )
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_VECTORIZED]
        )

    def test_equivalence_survives_mobility(self):
        nets = {b: make_net(b) for b in (BACKEND_SCALAR, BACKEND_VECTORIZED)}
        policies = {
            b: RotatingSubsetPolicy(
                [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
            )
            for b, net in nets.items()
        }
        moved = nets[BACKEND_SCALAR].topology.clients[3].client_id
        results = {b: [] for b in nets}
        for backend, net in nets.items():
            demand_fn = mixed_demand_fn(net.topology)
            allowed = policies[backend].decide(0, None)
            results[backend].append(net.run_epoch(0, allowed, demand_fn(0)))
            net.move_client(moved, 310.0, 1250.0)
            allowed = policies[backend].decide(
                1, results[backend][-1].observations
            )
            results[backend].append(net.run_epoch(1, allowed, demand_fn(1)))
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_VECTORIZED]
        )


class TestGainCacheInvalidation:
    def test_cache_matches_direct_channel_queries(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(channel, topology.aps, topology.clients)
        for client in topology.clients[:5]:
            for ap in topology.aps[:5]:
                assert cache.loss_db(client.client_id, ap.ap_id) == channel.loss_db(
                    ap, client
                )

    def test_move_client_refreshes_exactly_one_row(self):
        net = make_net(BACKEND_VECTORIZED)
        moved = net.topology.clients[0].client_id
        kept = net.topology.clients[1].client_id
        before_moved = dict(
            (ap.ap_id, net.rx_rb_power_dbm(moved, ap.ap_id))
            for ap in net.topology.aps
        )
        before_kept = dict(
            (ap.ap_id, net.rx_rb_power_dbm(kept, ap.ap_id))
            for ap in net.topology.aps
        )
        net.move_client(moved, 1777.0, 60.0)
        after_moved = dict(
            (ap.ap_id, net.rx_rb_power_dbm(moved, ap.ap_id))
            for ap in net.topology.aps
        )
        assert after_moved != before_moved
        for ap in net.topology.aps:
            assert net.rx_rb_power_dbm(kept, ap.ap_id) == before_kept[ap.ap_id]

    def test_moved_links_match_fresh_simulator(self):
        net = make_net(BACKEND_VECTORIZED)
        moved = net.topology.clients[0].client_id
        net.move_client(moved, 1777.0, 60.0)

        channel = make_channel()
        topology = make_topology(channel)
        topology.move_client(moved, 1777.0, 60.0)
        fresh = LteNetworkSimulator(
            topology=topology,
            grid=ResourceGrid(5e6),
            channel=channel,
            rngs=RngStreams(SEED),
            backend=BACKEND_VECTORIZED,
        )
        assert net._rx_rb_dbm == fresh._rx_rb_dbm
        assert net._prach_audible == fresh._prach_audible
        assert np.array_equal(net._rx_w_mat, fresh._rx_w_mat)
        assert np.array_equal(net._rx_dbm_mat, fresh._rx_dbm_mat)
        assert np.array_equal(net._prach_mat, fresh._prach_mat)

    def test_shared_cache_can_be_injected(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(channel, topology.aps, topology.clients)
        net = LteNetworkSimulator(
            topology=topology,
            grid=ResourceGrid(5e6),
            channel=channel,
            rngs=RngStreams(SEED),
            gain_cache=cache,
        )
        assert net.gain_cache is cache
