"""Tests for mobility and handover (paper Section 7 roaming)."""

import numpy as np
import pytest

from repro.core.interference.manager import CellFiInterferenceManager
from repro.lte.handover import (
    HandoverController,
    MobileNetworkRunner,
)
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.mobility import RandomWaypointModel
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology


class TestRandomWaypoint:
    def _model(self, seed=1, **kwargs):
        return RandomWaypointModel(1000.0, np.random.default_rng(seed), **kwargs)

    def test_positions_stay_in_area(self):
        model = self._model()
        for i in range(5):
            model.add_client(i, 500.0, 500.0)
        for _ in range(200):
            positions = model.step(5.0)
            for x, y in positions.values():
                assert 0.0 <= x <= 1000.0
                assert 0.0 <= y <= 1000.0

    def test_speed_bounded(self):
        model = self._model(pause_range_s=(0.0, 0.0), speed_range_m_s=(1.0, 2.0))
        model.add_client(0, 500.0, 500.0)
        previous = model.position(0)
        for _ in range(100):
            (x, y), = model.step(1.0).values()
            moved = np.hypot(x - previous[0], y - previous[1])
            assert moved <= 2.0 + 1e-9
            previous = (x, y)

    def test_walker_eventually_moves(self):
        model = self._model(pause_range_s=(0.0, 0.0))
        model.add_client(0, 500.0, 500.0)
        model.step(60.0)
        x, y = model.position(0)
        assert (x, y) != (500.0, 500.0)

    def test_duplicate_client_rejected(self):
        model = self._model()
        model.add_client(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model.add_client(0, 2.0, 2.0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            RandomWaypointModel(
                100.0, np.random.default_rng(0), speed_range_m_s=(0.0, 1.0)
            )
        model = self._model()
        with pytest.raises(ValueError):
            model.step(0.0)


class TestHandoverController:
    def test_no_handover_within_hysteresis(self):
        controller = HandoverController(hysteresis_db=3.0, time_to_trigger_epochs=1)
        decisions = controller.decide(
            {0: 0}, {0: {0: -90.0, 1: -88.0}}  # Only 2 dB better.
        )
        assert decisions == {}

    def test_handover_after_ttt(self):
        controller = HandoverController(hysteresis_db=3.0, time_to_trigger_epochs=2)
        rsrp = {0: {0: -90.0, 1: -85.0}}
        assert controller.decide({0: 0}, rsrp) == {}     # TTT epoch 1.
        assert controller.decide({0: 0}, rsrp) == {0: 1}  # TTT epoch 2.

    def test_streak_resets_when_condition_lapses(self):
        controller = HandoverController(hysteresis_db=3.0, time_to_trigger_epochs=2)
        good = {0: {0: -90.0, 1: -85.0}}
        bad = {0: {0: -90.0, 1: -90.0}}
        controller.decide({0: 0}, good)
        controller.decide({0: 0}, bad)      # Condition lapses.
        assert controller.decide({0: 0}, good) == {}  # Streak restarted.

    def test_streak_resets_on_target_change(self):
        controller = HandoverController(hysteresis_db=3.0, time_to_trigger_epochs=2)
        controller.decide({0: 0}, {0: {0: -90.0, 1: -85.0, 2: -95.0}})
        # A different neighbour takes the lead: counter restarts.
        decisions = controller.decide({0: 0}, {0: {0: -90.0, 1: -95.0, 2: -85.0}})
        assert decisions == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            HandoverController(hysteresis_db=-1.0)
        with pytest.raises(ValueError):
            HandoverController(time_to_trigger_epochs=0)


class TestMobileRunner:
    def _world(self, seed=3):
        rngs = RngStreams(seed)
        aps = [AccessPointSite(0, 300.0, 500.0), AccessPointSite(1, 1700.0, 500.0)]
        clients = [
            ClientSite(0, 350.0, 500.0, ap_id=0),
            ClientSite(1, 1650.0, 500.0, ap_id=1),
        ]
        topology = Topology(area_m=2000.0, aps=aps, clients=clients)
        mobility = RandomWaypointModel(
            2000.0, rngs.stream("walk"),
            speed_range_m_s=(40.0, 60.0),  # Vehicular: forces roaming fast.
            pause_range_s=(0.0, 0.0),
        )
        runner = MobileNetworkRunner(
            topology,
            ResourceGrid(5e6),
            CompositeChannel(UrbanHataPathLoss()),
            rngs.fork("net"),
            mobility,
        )
        return runner

    def test_clients_roam_between_cells(self):
        runner = self._world()
        manager = CellFiInterferenceManager([0, 1], 13, RngStreams(9))
        demands = lambda e: {0: float("inf"), 1: float("inf")}  # noqa: E731
        runner.run(40, manager, demands)
        assert runner.handovers, "fast walkers must trigger at least one handover"
        for event in runner.handovers:
            assert event.source_ap != event.target_ap

    def test_service_continues_across_handover(self):
        runner = self._world(seed=4)
        manager = CellFiInterferenceManager([0, 1], 13, RngStreams(10))
        demands = lambda e: {0: float("inf"), 1: float("inf")}  # noqa: E731
        results = runner.run(40, manager, demands)
        connected = np.mean(
            [np.mean(list(r.connected.values())) for r in results]
        )
        assert connected >= 0.85  # Roaming, not dropping.

    def test_serving_cell_tracked_in_topology(self):
        runner = self._world(seed=5)
        manager = CellFiInterferenceManager([0, 1], 13, RngStreams(11))
        demands = lambda e: {0: float("inf"), 1: float("inf")}  # noqa: E731
        runner.run(40, manager, demands)
        if runner.handovers:
            last = runner.handovers[-1]
            client = runner.topology.client(last.client_id)
            # After the final recorded handover the topology must reflect
            # some serving cell consistent with the event history.
            assert client.ap_id in (0, 1)
