"""Unit tests for the uplink model."""

import pytest

from repro.lte.uplink import UplinkModel, ack_traffic_bits
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.topology import AccessPointSite, ClientSite, Topology


def _topology(separation_m=2000.0, client_offset_m=150.0):
    aps = [AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, separation_m, 0.0)]
    clients = [
        ClientSite(0, client_offset_m, 0.0, ap_id=0),
        ClientSite(1, separation_m - client_offset_m, 0.0, ap_id=1),
    ]
    return Topology(area_m=separation_m, aps=aps, clients=clients)


def _model(topology=None, **kwargs):
    return UplinkModel(
        topology or _topology(),
        ResourceGrid(5e6),
        CompositeChannel(UrbanHataPathLoss()),
        **kwargs,
    )


class TestPowerControl:
    def test_interior_client_transmits_below_cap(self):
        model = _model(_topology(client_offset_m=100.0))
        assert model.tx_psd_dbm_per_rb(0) < 20.0

    def test_edge_client_hits_budget(self):
        model = _model(_topology(separation_m=3000.0, client_offset_m=1400.0))
        # PL ~ 132 dB: the target exceeds the 20 dBm cap.
        assert model.tx_psd_dbm_per_rb(0) == pytest.approx(20.0)

    def test_budget_splits_across_rbs(self):
        model = _model(_topology(separation_m=3000.0, client_offset_m=1400.0))
        one = model.tx_psd_dbm_per_rb(0, n_rbs=1)
        ten = model.tx_psd_dbm_per_rb(0, n_rbs=10)
        assert ten == pytest.approx(one - 10.0)

    def test_fractional_compensation(self):
        # alpha < 1: received power decreases with path loss (partial
        # compensation), so the near client is received *stronger*.
        model = _model(_topology(separation_m=3000.0))
        near = model.tx_psd_dbm_per_rb(0) - model._loss[(0, 0)]
        topology = _topology(separation_m=3000.0, client_offset_m=900.0)
        far_model = _model(topology)
        far = far_model.tx_psd_dbm_per_rb(0) - far_model._loss[(0, 0)]
        assert near > far

    def test_validation(self):
        model = _model()
        with pytest.raises(ValueError):
            model.tx_psd_dbm_per_rb(0, n_rbs=0)
        with pytest.raises(ValueError):
            UplinkModel(
                _topology(), ResourceGrid(5e6),
                CompositeChannel(UrbanHataPathLoss()), alpha=1.5,
            )


class TestUplinkSinr:
    def test_clean_uplink_decodes(self):
        model = _model()
        assert model.uplink_sinr_db(0) > 10.0

    def test_aggressor_lowers_sinr(self):
        topology = _topology(separation_m=700.0, client_offset_m=320.0)
        model = _model(topology)
        clean = model.uplink_sinr_db(0)
        jammed = model.uplink_sinr_db(0, aggressors=[(1, 1.0)])
        assert jammed < clean

    def test_activity_weight_scales_interference(self):
        topology = _topology(separation_m=700.0, client_offset_m=320.0)
        model = _model(topology)
        full = model.uplink_sinr_db(0, aggressors=[(1, 1.0)])
        half = model.uplink_sinr_db(0, aggressors=[(1, 0.5)])
        assert half > full

    def test_activity_validated(self):
        model = _model()
        with pytest.raises(ValueError):
            model.uplink_sinr_db(0, aggressors=[(1, 1.5)])


class TestUplinkEpoch:
    def test_isolated_cells_serve_uplink(self):
        model = _model()
        allowed = {0: set(range(13)), 1: set(range(13))}
        result = model.run_epoch(allowed, {0: float("inf"), 1: float("inf")})
        assert result.throughput_bps[0] > 1e5
        assert result.throughput_bps[1] > 1e5

    def test_demand_capped(self):
        model = _model()
        allowed = {0: set(range(13)), 1: set(range(13))}
        result = model.run_epoch(allowed, {0: 8000.0, 1: 0.0})
        assert result.throughput_bps[0] == pytest.approx(8000.0)

    def test_idle_client_not_reported(self):
        model = _model()
        allowed = {0: set(range(13)), 1: set(range(13))}
        result = model.run_epoch(allowed, {0: 1000.0})
        assert 1 not in result.throughput_bps

    def test_subchannel_split_protects_uplink(self):
        # Orthogonal allocations beat full overlap for cell-edge uplinks --
        # CellFi's decisions protect UL for free in TDD.
        topology = _topology(separation_m=700.0, client_offset_m=330.0)
        model = _model(topology)
        demands = {0: float("inf"), 1: float("inf")}
        overlap = model.run_epoch(
            {0: set(range(13)), 1: set(range(13))}, demands
        )
        split = model.run_epoch(
            {0: set(range(0, 6)), 1: set(range(6, 13))}, demands
        )
        overlap_sinr = overlap.sinr_db[0]
        split_sinr = split.sinr_db[0]
        assert split_sinr > overlap_sinr

    def test_no_subchannels_no_uplink(self):
        model = _model()
        result = model.run_epoch({0: set(), 1: set()}, {0: 1000.0, 1: 1000.0})
        assert result.throughput_bps[0] == 0.0


class TestAckTraffic:
    def test_two_percent_default(self):
        assert ack_traffic_bits(1e6) == pytest.approx(2e4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ack_traffic_bits(-1.0)
