"""Unit tests for CellFi channel selection."""

import pytest

from repro.core.channel_selection import (
    ChannelSelector,
    OCCUPANCY_CELLFI,
    OCCUPANCY_IDLE,
    OCCUPANCY_OTHER,
    OccupancyProbe,
)
from repro.sim.engine import Simulator
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import DeviceDescriptor, GeoLocation, PawsServer
from repro.tvws.regulatory import EtsiComplianceRules


class _Harness:
    """A selector wired to stub radio callbacks."""

    def __init__(self, probe=None, poll_interval_s=1.0, lease_duration_s=3600.0):
        self.sim = Simulator()
        self.database = SpectrumDatabase(
            US_CHANNEL_PLAN, lease_duration_s=lease_duration_s
        )
        self.paws = PawsServer(self.database)
        self.compliance = EtsiComplianceRules()
        self.started = []
        self.stopped = 0
        self.selector = ChannelSelector(
            sim=self.sim,
            paws=self.paws,
            device=DeviceDescriptor("test-ap"),
            location=GeoLocation(0.0, 0.0),
            probe=probe or OccupancyProbe(),
            radio_start=lambda ch, spec: self.started.append(ch),
            radio_stop=self._stop,
            poll_interval_s=poll_interval_s,
            compliance=self.compliance,
        )

    def _stop(self):
        self.stopped += 1


class TestProbe:
    def test_default_is_idle(self):
        assert OccupancyProbe().probe(14) == OCCUPANCY_IDLE

    def test_custom_classifier(self):
        probe = OccupancyProbe(lambda ch: OCCUPANCY_OTHER)
        assert probe.probe(14) == OCCUPANCY_OTHER

    def test_unknown_class_rejected(self):
        probe = OccupancyProbe(lambda ch: "martian")
        with pytest.raises(ValueError):
            probe.probe(14)


class TestAcquisition:
    def test_acquires_on_start(self):
        harness = _Harness()
        harness.selector.start()
        assert harness.started == [14]  # Lowest idle channel.
        assert harness.selector.current_channel == 14

    def test_double_start_rejected(self):
        harness = _Harness()
        harness.selector.start()
        with pytest.raises(RuntimeError):
            harness.selector.start()

    def test_prefers_idle_over_occupied(self):
        def classify(channel):
            return OCCUPANCY_OTHER if channel < 20 else OCCUPANCY_IDLE

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        assert harness.selector.current_channel == 20

    def test_prefers_cellfi_over_other_technology(self):
        def classify(channel):
            if channel == 16:
                return OCCUPANCY_CELLFI
            return OCCUPANCY_OTHER

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        assert harness.selector.current_channel == 16

    def test_takes_occupied_when_nothing_else(self):
        harness = _Harness(probe=OccupancyProbe(lambda ch: OCCUPANCY_OTHER))
        harness.selector.start()
        assert harness.selector.current_channel == 14

    def test_no_spectrum_logs_and_waits(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        assert harness.selector.current_channel is None
        assert any(kind == "no-spectrum" for _, kind, _ in harness.selector.timeline())

    def test_use_notification_sent(self):
        harness = _Harness()
        harness.selector.start()
        assert harness.paws.use_notifications[0]["channel"] == 14


class TestVacating:
    def test_vacates_on_withdrawal(self):
        harness = _Harness()
        harness.selector.start()
        harness.database.withdraw_channel(14)
        harness.sim.run(until=2.0)
        assert harness.stopped == 1
        assert harness.selector.current_channel == 15  # Moved on.

    def test_vacate_within_deadline(self):
        harness = _Harness(poll_interval_s=2.0)
        harness.selector.start()
        harness.sim.run(until=10.0)
        harness.database.withdraw_channel(14)
        harness.sim.run(until=70.0)
        assert harness.compliance.compliant

    def test_frequent_polls_keep_lease_rolling(self):
        # Polling faster than the lease duration renews it continuously:
        # the radio never has to stop.
        harness = _Harness(lease_duration_s=5.0, poll_interval_s=1.0)
        harness.selector.start()
        harness.sim.run(until=12.0)
        assert harness.selector.current_channel == 14
        assert harness.stopped == 0

    def test_lease_expiry_forces_requery(self):
        # Polling *slower* than the lease duration lets it lapse; the
        # selector must stop transmitting and re-acquire.
        harness = _Harness(lease_duration_s=5.0, poll_interval_s=10.0)
        harness.selector.start()
        harness.sim.run(until=12.0)
        assert harness.selector.current_channel == 14
        assert harness.stopped >= 1

    def test_reacquires_after_restore(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            if channel.number != 14:
                harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        harness.database.withdraw_channel(14)
        harness.sim.run(until=5.0)
        assert harness.selector.current_channel is None
        harness.database.restore_channel(14)
        harness.sim.run(until=10.0)
        assert harness.selector.current_channel == 14
        assert harness.started == [14, 14]

    def test_poll_interval_validation(self):
        with pytest.raises(ValueError):
            _Harness(poll_interval_s=0.0)
