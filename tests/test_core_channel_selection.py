"""Unit tests for CellFi channel selection."""

import pytest

from repro.core.channel_selection import (
    ChannelSelector,
    OCCUPANCY_CELLFI,
    OCCUPANCY_IDLE,
    OCCUPANCY_OTHER,
    OccupancyProbe,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import DeviceDescriptor, GeoLocation, PawsServer
from repro.tvws.regulatory import EtsiComplianceRules, VACATE_DEADLINE_S
from repro.tvws.transport import (
    DirectTransport,
    FaultSpec,
    FaultyTransport,
    PawsTransport,
    RetryPolicy,
    RobustnessLog,
    TransportTimeout,
)


class _Harness:
    """A selector wired to stub radio callbacks."""

    def __init__(
        self,
        probe=None,
        poll_interval_s=1.0,
        lease_duration_s=3600.0,
        transport=None,
        secondary=None,
        retry=None,
    ):
        self.sim = Simulator()
        self.database = SpectrumDatabase(
            US_CHANNEL_PLAN, lease_duration_s=lease_duration_s
        )
        self.paws = PawsServer(self.database)
        self.compliance = EtsiComplianceRules()
        self.robustness = RobustnessLog()
        self.started = []
        self.stopped = 0
        endpoint = self.paws
        if transport is not None:
            endpoint = transport(self)  # factory gets the built harness
        self.selector = ChannelSelector(
            sim=self.sim,
            paws=endpoint,
            device=DeviceDescriptor("test-ap"),
            location=GeoLocation(0.0, 0.0),
            probe=probe or OccupancyProbe(),
            radio_start=lambda ch, spec: self.started.append(ch),
            radio_stop=self._stop,
            poll_interval_s=poll_interval_s,
            compliance=self.compliance,
            secondary=secondary,
            retry=retry,
            robustness=self.robustness,
            rng=RngStreams(1).stream("jitter"),
        )

    def _stop(self):
        self.stopped += 1


def _faulty_factory(spec, seed=1):
    """Harness transport factory: a FaultyTransport over the harness server."""

    def build(harness):
        return FaultyTransport(
            inner=DirectTransport(harness.paws, name="primary"),
            clock=lambda: harness.sim.now,
            rng=RngStreams(seed).stream("transport-faults"),
            spec=spec,
            log=harness.robustness,
            name="primary",
        )

    return build


class _FailNext(PawsTransport):
    """Wrap a transport; fail the next N getSpectrum calls with a timeout."""

    def __init__(self, inner, fail=0):
        self.inner = inner
        self.name = inner.name
        self.fail = fail

    def init_device(self, device):
        return self.inner.init_device(device)

    def notify_spectrum_use(self, device, channel, now):
        return self.inner.notify_spectrum_use(device, channel, now)

    def available_spectrum(self, request, timeout_s=None):
        if self.fail > 0:
            self.fail -= 1
            raise TransportTimeout(
                "injected timeout", timeout_s if timeout_s is not None else 0.0
            )
        return self.inner.available_spectrum(request, timeout_s)


class TestProbe:
    def test_default_is_idle(self):
        assert OccupancyProbe().probe(14) == OCCUPANCY_IDLE

    def test_custom_classifier(self):
        probe = OccupancyProbe(lambda ch: OCCUPANCY_OTHER)
        assert probe.probe(14) == OCCUPANCY_OTHER

    def test_unknown_class_rejected(self):
        probe = OccupancyProbe(lambda ch: "martian")
        with pytest.raises(ValueError):
            probe.probe(14)


class TestAcquisition:
    def test_acquires_on_start(self):
        harness = _Harness()
        harness.selector.start()
        assert harness.started == [14]  # Lowest idle channel.
        assert harness.selector.current_channel == 14

    def test_double_start_rejected(self):
        harness = _Harness()
        harness.selector.start()
        with pytest.raises(RuntimeError):
            harness.selector.start()

    def test_prefers_idle_over_occupied(self):
        def classify(channel):
            return OCCUPANCY_OTHER if channel < 20 else OCCUPANCY_IDLE

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        assert harness.selector.current_channel == 20

    def test_prefers_cellfi_over_other_technology(self):
        def classify(channel):
            if channel == 16:
                return OCCUPANCY_CELLFI
            return OCCUPANCY_OTHER

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        assert harness.selector.current_channel == 16

    def test_takes_occupied_when_nothing_else(self):
        harness = _Harness(probe=OccupancyProbe(lambda ch: OCCUPANCY_OTHER))
        harness.selector.start()
        assert harness.selector.current_channel == 14

    def test_no_spectrum_logs_and_waits(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        assert harness.selector.current_channel is None
        assert any(kind == "no-spectrum" for _, kind, _ in harness.selector.timeline())

    def test_use_notification_sent(self):
        harness = _Harness()
        harness.selector.start()
        assert harness.paws.use_notifications[0]["channel"] == 14


class TestVacating:
    def test_vacates_on_withdrawal(self):
        harness = _Harness()
        harness.selector.start()
        harness.database.withdraw_channel(14)
        harness.sim.run(until=2.0)
        assert harness.stopped == 1
        assert harness.selector.current_channel == 15  # Moved on.

    def test_vacate_within_deadline(self):
        harness = _Harness(poll_interval_s=2.0)
        harness.selector.start()
        harness.sim.run(until=10.0)
        harness.database.withdraw_channel(14)
        harness.sim.run(until=70.0)
        assert harness.compliance.compliant

    def test_frequent_polls_keep_lease_rolling(self):
        # Polling faster than the lease duration renews it continuously:
        # the radio never has to stop.
        harness = _Harness(lease_duration_s=5.0, poll_interval_s=1.0)
        harness.selector.start()
        harness.sim.run(until=12.0)
        assert harness.selector.current_channel == 14
        assert harness.stopped == 0

    def test_lease_expiry_forces_requery(self):
        # Polling *slower* than the lease duration lets it lapse; the
        # selector must stop transmitting and re-acquire.
        harness = _Harness(lease_duration_s=5.0, poll_interval_s=10.0)
        harness.selector.start()
        harness.sim.run(until=12.0)
        assert harness.selector.current_channel == 14
        assert harness.stopped >= 1

    def test_reacquires_after_restore(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            if channel.number != 14:
                harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        harness.database.withdraw_channel(14)
        harness.sim.run(until=5.0)
        assert harness.selector.current_channel is None
        harness.database.restore_channel(14)
        harness.sim.run(until=10.0)
        assert harness.selector.current_channel == 14
        assert harness.started == [14, 14]

    def test_poll_interval_validation(self):
        with pytest.raises(ValueError):
            _Harness(poll_interval_s=0.0)


class TestProbeDiscipline:
    def test_each_channel_probed_exactly_once_per_decision(self):
        calls = []

        def classify(channel):
            calls.append(channel)
            return OCCUPANCY_IDLE

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        # One probe per offered channel, no duplicates from the ranking.
        assert sorted(calls) == sorted(set(calls))
        assert len(calls) == len(US_CHANNEL_PLAN)

    def test_inconsistent_probe_cannot_skew_ranking(self):
        # A noisy probe that flips class on every call: the cached class
        # from the single probe is what ranks, so the choice is stable.
        state = {"n": 0}

        def classify(channel):
            state["n"] += 1
            return OCCUPANCY_IDLE if state["n"] % 2 else OCCUPANCY_OTHER

        harness = _Harness(probe=OccupancyProbe(classify))
        harness.selector.start()
        assert harness.selector.current_channel is not None


class TestNoSpectrumRateLimit:
    def test_single_event_per_dry_spell(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        harness.sim.run(until=30.0)
        kinds = [kind for _, kind, _ in harness.selector.timeline()]
        assert kinds.count("no-spectrum") == 1
        assert len(harness.selector.events) < 10  # bounded, not one per poll

    def test_recovery_emits_summary(self):
        harness = _Harness()
        for channel in US_CHANNEL_PLAN.channels:
            harness.database.withdraw_channel(channel.number)
        harness.selector.start()
        harness.sim.run(until=20.0)
        harness.database.restore_channel(14)
        harness.sim.run(until=25.0)
        assert harness.selector.current_channel == 14
        recovered = [
            detail
            for _, kind, detail in harness.selector.timeline()
            if kind == "no-spectrum-recovered"
        ]
        assert len(recovered) == 1
        assert "suppressed" in recovered[0]


class TestRetryAndBackoff:
    def test_transient_timeout_is_retried_not_vacated(self):
        harness = _Harness(
            transport=lambda h: _FailNext(DirectTransport(h.paws, "primary"))
        )
        harness.selector.start()
        assert harness.selector.current_channel == 14
        harness.selector._transports[0].fail = 1  # next poll times out once
        harness.sim.run(until=10.0)
        assert harness.stopped == 0  # a single lost reply never vacates
        assert harness.selector.current_channel == 14
        counts = harness.robustness.counts()
        assert counts.get("backoff", 0) >= 1
        assert counts.get("retry", 0) >= 1

    def test_retries_exhausted_enters_grace_not_vacate(self):
        harness = _Harness(
            transport=_faulty_factory(FaultSpec(outages=((5.0, 30.0),)))
        )
        harness.selector.start()
        harness.sim.run(until=10.0)
        assert harness.selector.in_grace
        assert harness.stopped == 0  # still transmitting on the cached lease
        harness.sim.run(until=35.0)
        assert not harness.selector.in_grace  # database came back
        assert harness.stopped == 0
        counts = harness.robustness.counts()
        assert counts.get("grace-entered", 0) >= 1
        assert counts.get("grace-exited", 0) >= 1
        assert counts.get("forced-vacate", 0) == 0

    def test_long_outage_forces_vacate_within_deadline(self):
        harness = _Harness(
            transport=_faulty_factory(FaultSpec(outages=((5.0, 200.0),)))
        )
        harness.selector.start()
        harness.sim.run(until=120.0)
        assert harness.stopped == 1
        assert harness.selector.current_channel is None
        counts = harness.robustness.counts()
        assert counts.get("forced-vacate", 0) == 1
        # The vacate happened within 60 s of the last successful
        # validation (the poll just before the outage began).
        vacate_time = next(
            t for t, kind, _ in harness.selector.timeline() if kind == "radio-stop"
        )
        assert vacate_time <= 4.0 + VACATE_DEADLINE_S + 1e-9
        assert harness.compliance.compliant

    def test_grace_deadline_clipped_by_lease_expiry(self):
        harness = _Harness(
            lease_duration_s=20.0,
            transport=_faulty_factory(FaultSpec(outages=((5.0, 200.0),))),
        )
        harness.selector.start()
        harness.sim.run(until=60.0)
        # Lease expires at ~24 s (last renewal at 4 s), well before the
        # 60 s ETSI deadline: the vacate must not outlive the lease.
        assert harness.stopped == 1
        vacate_time = next(
            t for t, kind, _ in harness.selector.timeline() if kind == "radio-stop"
        )
        assert vacate_time <= 24.0 + 1e-9


class TestFailover:
    def test_secondary_takes_over(self):
        harness = _Harness(
            transport=_faulty_factory(FaultSpec(timeout_prob=1.0)),
            secondary=DirectTransport(
                PawsServer(SpectrumDatabase(US_CHANNEL_PLAN)), "secondary"
            ),
        )
        harness.selector.start()
        harness.sim.run(until=10.0)
        assert harness.selector.current_channel == 14
        assert harness.selector.active_transport.name == "secondary"
        counts = harness.robustness.counts()
        assert counts.get("failover", 0) >= 1
        assert harness.stopped == 0

    def test_failover_is_sticky(self):
        harness = _Harness(
            transport=_faulty_factory(FaultSpec(timeout_prob=1.0)),
            secondary=DirectTransport(
                PawsServer(SpectrumDatabase(US_CHANNEL_PLAN)), "secondary"
            ),
        )
        harness.selector.start()
        harness.sim.run(until=20.0)
        failovers = harness.robustness.counts().get("failover", 0)
        # One switch, then every later poll goes straight to the
        # secondary instead of burning retries on the dead primary.
        assert failovers == 1


class TestStrictServerRecovery:
    def test_reinit_after_server_forgets_registration(self):
        harness = _Harness()
        harness.paws.strict = True
        harness.selector.start()
        assert harness.selector.current_channel == 14
        # The database restarts and loses its registration table: the
        # next poll gets ERROR_MISSING, and the client repairs it by
        # re-sending INIT instead of vacating.
        harness.paws._registered.clear()
        harness.sim.run(until=5.0)
        assert harness.selector.current_channel == 14
        assert harness.stopped == 0
        assert harness.robustness.counts().get("retry", 0) >= 1


class TestRetryPolicyWiring:
    def test_custom_policy_controls_attempts(self):
        harness = _Harness(
            transport=_faulty_factory(FaultSpec(timeout_prob=1.0)),
            retry=RetryPolicy(max_retries=0, timeout_s=0.2),
        )
        harness.selector.start()
        harness.sim.run(until=3.0)
        counts = harness.robustness.counts()
        assert counts.get("retry", 0) == 0  # no retries allowed
        assert counts.get("backoff", 0) == 0
