"""Incremental epoch backend: bit-identity, dirty tracking and culling.

The incremental backend reuses cached per-AP blocks across epochs and
skips interference from culled neighbours, so these tests hold it to the
same standard as the vectorized backend: *exact* equality with the scalar
oracle (no tolerances) under seeded mobility, handover and hopping churn
-- including zero-activity epochs, where the cache does all the work.

Also pinned here: the hot-path bugfix sweep that rode along with the
backend -- the ``_rows_of_ap`` handover staleness fix, the read-only
gain-matrix accessors, the zero-signal CQI clamp, and the PF scheduler
fast path.
"""

import math

import numpy as np
import pytest

from repro.lte.network import (
    BACKEND_INCREMENTAL,
    BACKEND_SCALAR,
    BACKEND_VECTORIZED,
    ZERO_SIGNAL_SINR_DB,
    AllSubchannelsPolicy,
    LteNetworkSimulator,
    _elementwise_db,
)
from repro.lte.scheduler import (
    MINISLOTS_PER_EPOCH,
    ProportionalFairScheduler,
    Scheduler,
)
from repro.phy.mcs import CQI_OUT_OF_RANGE, cqi_from_sinr
from repro.phy.propagation import (
    CompositeChannel,
    GainMatrixCache,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import random_topology, reassociate_strongest

N_CELLS = 20
CLIENTS_PER_AP = 4
SEED = 42
CULL_DB = 135.0


def make_channel():
    return CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(sigma_db=7.0, seed=SEED)
    )


def make_topology(channel):
    rng = np.random.default_rng(SEED)
    topology = random_topology(
        rng,
        n_aps=N_CELLS,
        clients_per_ap=CLIENTS_PER_AP,
        area_m=2000.0,
        client_range_m=600.0,
    )
    return reassociate_strongest(topology, channel.loss_db)


def make_net(backend, cull_loss_db=None):
    channel = make_channel()
    topology = make_topology(channel)
    return LteNetworkSimulator(
        topology=topology,
        grid=ResourceGrid(5e6),
        channel=channel,
        rngs=RngStreams(SEED),
        backend=backend,
        cull_loss_db=cull_loss_db,
    )


class RotatingSubsetPolicy:
    """Partial, shifting subchannel sets: hopping-style churn."""

    def __init__(self, ap_ids, n_subchannels):
        self.ap_ids = list(ap_ids)
        self.n_subchannels = n_subchannels

    def decide(self, epoch_index, observations):
        return {
            ap: {
                (ap + epoch_index + k) % self.n_subchannels
                for k in range(3 + ap % 4)
            }
            for ap in self.ap_ids
        }


def assert_epochs_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.epoch_index == b.epoch_index
        assert a.served_bits == b.served_bits
        assert a.throughput_bps == b.throughput_bps
        assert a.connected == b.connected
        assert a.allocations.keys() == b.allocations.keys()
        for ap_id in a.allocations:
            assert a.allocations[ap_id].served_bits == b.allocations[ap_id].served_bits
            assert (
                a.allocations[ap_id].time_fraction
                == b.allocations[ap_id].time_fraction
            )
        assert a.observations.keys() == b.observations.keys()
        for ap_id in a.observations:
            oa, ob = a.observations[ap_id], b.observations[ap_id]
            assert oa.n_active_clients == ob.n_active_clients
            assert oa.estimated_contenders == ob.estimated_contenders
            assert oa.clients.keys() == ob.clients.keys()
            for cid in oa.clients:
                ca, cb = oa.clients[cid], ob.clients[cid]
                assert ca.subband_cqi == cb.subband_cqi
                assert ca.max_subband_cqi == cb.max_subband_cqi
                assert ca.interference_detected == cb.interference_detected
                assert ca.scheduled_fraction == cb.scheduled_fraction


def churn_run(net, n_epochs):
    """Seeded mobility + handover + hopping churn with zero-activity epochs.

    Every stochastic choice comes from dedicated generators seeded
    identically per backend, so all backends replay the same event
    sequence in lockstep.
    """
    policy = RotatingSubsetPolicy(
        [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
    )
    churn_rng = np.random.default_rng(7)
    results = []
    for epoch in range(n_epochs):
        if epoch % 4 == 3:
            demands = {c.client_id: 0.0 for c in net.topology.clients}
        else:
            demands = {}
            for c in net.topology.clients:
                cid = c.client_id
                if cid % 5 == 0:
                    demands[cid] = 0.0
                elif cid % 3 == 0:
                    demands[cid] = 2e6
                else:
                    demands[cid] = float("inf")
        allowed = policy.decide(epoch, None)
        results.append(net.run_epoch(epoch, allowed, demands))
        # Mobility: jitter a couple of clients.
        for _ in range(2):
            mover = net.topology.clients[
                int(churn_rng.integers(len(net.topology.clients)))
            ]
            net.move_client(
                mover.client_id,
                float(churn_rng.uniform(0.0, net.topology.area_m)),
                float(churn_rng.uniform(0.0, net.topology.area_m)),
            )
        # Handover: re-attach one client to a random cell.
        roamer = net.topology.clients[
            int(churn_rng.integers(len(net.topology.clients)))
        ]
        net.reattach_client(roamer.client_id, int(churn_rng.integers(N_CELLS)))
    return results


class TestBackendSelection:
    def test_incremental_backend_accepted(self):
        assert make_net(BACKEND_INCREMENTAL).backend == BACKEND_INCREMENTAL

    def test_cull_conflict_with_injected_cache_rejected(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(
            channel, topology.aps, topology.clients, cull_loss_db=140.0
        )
        with pytest.raises(ValueError):
            LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=channel,
                rngs=RngStreams(SEED),
                gain_cache=cache,
                cull_loss_db=150.0,
            )


class TestBitForBitFuzz:
    """Scalar vs vectorized vs incremental in lockstep over seeded churn."""

    def test_three_backends_identical_under_churn(self):
        results = {
            backend: churn_run(make_net(backend), 8)
            for backend in (
                BACKEND_SCALAR,
                BACKEND_VECTORIZED,
                BACKEND_INCREMENTAL,
            )
        }
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_VECTORIZED]
        )
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_INCREMENTAL]
        )

    def test_culled_incremental_matches_culled_scalar_oracle(self):
        # Culling changes the physics (dead links carry nothing), so the
        # oracle is the *scalar backend with the same horizon*.
        results = {
            backend: churn_run(make_net(backend, cull_loss_db=CULL_DB), 8)
            for backend in (BACKEND_SCALAR, BACKEND_INCREMENTAL)
        }
        assert_epochs_identical(
            results[BACKEND_SCALAR], results[BACKEND_INCREMENTAL]
        )

    def test_culling_horizon_actually_culls(self):
        net = make_net(BACKEND_INCREMENTAL, cull_loss_db=CULL_DB)
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        net.run_epoch(0, policy.decide(0, None), demands)
        assert net.last_epoch_stats["culled_columns"] > 0
        dead = [
            (cid, ap_id)
            for (cid, ap_id), w in net._rx_rb_w.items()
            if w == 0.0
        ]
        assert dead
        for cid, ap_id in dead:
            assert net.rx_rb_power_dbm(cid, ap_id) == float("-inf")
            assert not net.prach_audible(cid, ap_id)


class TestDirtyTracking:
    def _run_one(self, net, policy, epoch, demands):
        return net.run_epoch(epoch, policy.decide(epoch, None), demands)

    def test_quiescent_epochs_are_fully_clean(self):
        net = make_net(BACKEND_INCREMENTAL)
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        self._run_one(net, policy, 0, demands)
        assert net.last_epoch_stats["dirty_aps"] == N_CELLS
        self._run_one(net, policy, 1, demands)
        assert net.last_epoch_stats["dirty_aps"] == 0
        assert net.last_epoch_stats["clean_aps"] == N_CELLS
        assert net.last_epoch_stats["dirty_rows"] == 0

    def test_mobility_dirties_exactly_the_serving_ap(self):
        net = make_net(BACKEND_INCREMENTAL)
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        self._run_one(net, policy, 0, demands)
        moved = net.topology.clients[0]
        net.move_client(moved.client_id, 500.0, 500.0)
        self._run_one(net, policy, 1, demands)
        assert net.last_epoch_stats["dirty_aps"] == 1
        assert net.last_epoch_stats["clean_aps"] == N_CELLS - 1

    def test_reattach_dirties_both_cells(self):
        net = make_net(BACKEND_INCREMENTAL)
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        self._run_one(net, policy, 0, demands)
        roamer = net.topology.clients[0]
        target = next(
            ap.ap_id for ap in net.topology.aps if ap.ap_id != roamer.ap_id
        )
        net.reattach_client(roamer.client_id, target)
        self._run_one(net, policy, 1, demands)
        assert net.last_epoch_stats["dirty_aps"] == 2
        assert net.last_epoch_stats["clean_aps"] == N_CELLS - 2

    def test_hopping_decision_change_dirties_affected_cells(self):
        net = make_net(BACKEND_INCREMENTAL)
        policy = RotatingSubsetPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        demands = {c.client_id: float("inf") for c in net.topology.clients}
        self._run_one(net, policy, 0, demands)
        # The rotating policy shifts every AP's subchannel set each epoch,
        # so every cached block's decision signature misses.
        self._run_one(net, policy, 1, demands)
        assert net.last_epoch_stats["dirty_aps"] == N_CELLS


class TestReattachRegression:
    """The ``_rows_of_ap`` handover-staleness bug (diverged before the fix)."""

    def test_reattach_matches_fresh_simulator(self):
        net = make_net(BACKEND_VECTORIZED)
        roamer = net.topology.clients[0]
        target = next(
            ap.ap_id for ap in net.topology.aps if ap.ap_id != roamer.ap_id
        )
        net.reattach_client(roamer.client_id, target)

        channel = make_channel()
        topology = make_topology(channel)
        topology.reattach_client(roamer.client_id, target)
        fresh = LteNetworkSimulator(
            topology=topology,
            grid=ResourceGrid(5e6),
            channel=channel,
            rngs=RngStreams(SEED),
            backend=BACKEND_VECTORIZED,
        )
        for ap_id in net._rows_of_ap:
            assert np.array_equal(
                net._rows_of_ap[ap_id], fresh._rows_of_ap[ap_id]
            ), f"stale row mapping for AP {ap_id}"
        assert net._rx_rb_dbm == fresh._rx_rb_dbm
        assert net._prach_audible == fresh._prach_audible
        assert np.array_equal(net._rx_w_mat, fresh._rx_w_mat)
        assert np.array_equal(net._prach_mat, fresh._prach_mat)

    def test_epochs_after_reattach_match_fresh_simulator(self):
        nets = {}
        for flavor in ("reattached", "fresh"):
            channel = make_channel()
            topology = make_topology(channel)
            roamer_id = topology.clients[0].client_id
            target = next(
                ap.ap_id
                for ap in topology.aps
                if ap.ap_id != topology.clients[0].ap_id
            )
            if flavor == "fresh":
                topology.reattach_client(roamer_id, target)
            net = LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=channel,
                rngs=RngStreams(SEED),
                backend=BACKEND_VECTORIZED,
            )
            if flavor == "reattached":
                net.reattach_client(roamer_id, target)
            nets[flavor] = net
        demands = {
            c.client_id: float("inf")
            for c in nets["fresh"].topology.clients
        }
        results = {}
        for flavor, net in nets.items():
            policy = RotatingSubsetPolicy(
                [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
            )
            results[flavor] = net.run(2, policy, lambda e: dict(demands))
        assert_epochs_identical(results["reattached"], results["fresh"])

    def test_topology_reattach_preserves_canonical_order(self):
        channel = make_channel()
        topology = make_topology(channel)
        mover = topology.clients[0]
        target = next(
            ap.ap_id for ap in topology.aps if ap.ap_id != mover.ap_id
        )
        topology.reattach_client(mover.client_id, target)
        for ap in topology.aps:
            expected = [
                c for c in topology.clients if c.ap_id == ap.ap_id
            ]
            assert topology.clients_of(ap.ap_id) == expected


class TestZeroSignalClamp:
    """``log10(0)`` must clamp, not leak NaN into the highest CQI bin."""

    def test_elementwise_db_clamps_zero(self):
        out = _elementwise_db(np.array([[1.0, 0.0], [0.0, 100.0]]))
        assert out[0, 0] == 0.0
        assert out[0, 1] == ZERO_SIGNAL_SINR_DB
        assert out[1, 0] == ZERO_SIGNAL_SINR_DB
        assert out[1, 1] == 20.0
        assert np.isfinite(out).all()

    def test_clamped_sinr_maps_to_cqi_zero_both_quantisers(self):
        assert cqi_from_sinr(ZERO_SIGNAL_SINR_DB) == CQI_OUT_OF_RANGE
        table = np.array(
            [e.min_sinr_db for e in __import__("repro.phy.mcs", fromlist=["LTE_CQI_TABLE"]).LTE_CQI_TABLE]
        )
        assert (
            int(np.searchsorted(table, ZERO_SIGNAL_SINR_DB, side="right"))
            == CQI_OUT_OF_RANGE
        )

    def test_scalar_sinr_queries_clamp_on_dead_links(self):
        net = make_net(BACKEND_SCALAR, cull_loss_db=CULL_DB)
        dead = next(
            (cid, ap_id)
            for (cid, ap_id), w in net._rx_rb_w.items()
            if w == 0.0
        )
        cid, ap_id = dead
        assert net.sinr_db(cid, ap_id, ()) == ZERO_SIGNAL_SINR_DB
        assert net.clean_sinr_db(cid, ap_id) == ZERO_SIGNAL_SINR_DB
        assert (
            net._weighted_sinr_db(cid, ap_id, [ap_id], [0.5])
            == ZERO_SIGNAL_SINR_DB
        )


class TestGainCacheAccessors:
    def test_matrix_is_read_only(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(channel, topology.aps, topology.clients)
        matrix = cache.matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 0.0

    def test_rows_subset_fills_lazily(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(channel, topology.aps, topology.clients)
        wanted = [c.client_id for c in topology.clients[:3]]
        subset = cache.rows(wanted)
        assert subset.shape == (3, len(topology.aps))
        # Only the requested rows were materialised.
        filled = int(cache._row_valid.sum())
        assert filled == 3
        with pytest.raises(ValueError):
            subset[0, 0] = 0.0
        for i, cid in enumerate(wanted):
            for ap in topology.aps:
                assert subset[i, cache.ap_index[ap.ap_id]] == cache.loss_db(
                    cid, ap.ap_id
                )

    def test_rows_empty_subset_normalized(self):
        # Regression: fancy-indexing with an empty index list is
        # dtype-ambiguous on some NumPy versions (an empty asarray defaults
        # to float64 *indices*), which surfaced as a 0-row view with the
        # wrong dtype.  The empty subset must be an explicit float64
        # (0, n_aps) read-only array and must not materialise any rows.
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(channel, topology.aps, topology.clients)
        subset = cache.rows([])
        assert subset.shape == (0, len(topology.aps))
        assert subset.dtype == np.float64
        assert not subset.flags.writeable
        assert int(cache._row_valid.sum()) == 0

    def test_is_culled_matches_horizon(self):
        channel = make_channel()
        topology = make_topology(channel)
        cache = GainMatrixCache(
            channel, topology.aps, topology.clients, cull_loss_db=CULL_DB
        )
        culled = live = 0
        for client in topology.clients[:8]:
            for ap in topology.aps:
                expected = cache.loss_db(client.client_id, ap.ap_id) > CULL_DB
                assert cache.is_culled(client.client_id, ap.ap_id) == expected
                culled += expected
                live += not expected
        assert live > 0

    def test_bad_horizon_rejected(self):
        channel = make_channel()
        topology = make_topology(channel)
        with pytest.raises(ValueError):
            GainMatrixCache(
                channel, topology.aps, topology.clients, cull_loss_db=-3.0
            )


class _ReferencePfScheduler(ProportionalFairScheduler):
    """The pre-fast-path PF scheduler: pick closure + generic slot engine.

    Kept verbatim as the reference for the bit-identity test of the
    inlined fast path.
    """

    def allocate(self, allowed_subchannels, demands_bits, rate_fn, epoch_s=1.0):
        for client in demands_bits:
            self._average_bps.setdefault(client, self.floor_bps)

        def pick(sub, remaining, served):
            best_client = -1
            best_metric = 0.0
            for client, demand in remaining.items():
                if demand <= 0.0:
                    continue
                rate = rate_fn(client, sub)
                if rate <= 0.0:
                    continue
                history_bits = self.smoothing * self._average_bps[client] * epoch_s
                denom = max(
                    served[client] + history_bits,
                    self.floor_bps * epoch_s / 100.0,
                )
                metric = rate / denom
                if metric > best_metric:
                    best_metric = metric
                    best_client = client
            return best_client

        allocation = self._slot_allocate(
            allowed_subchannels, demands_bits, rate_fn, epoch_s, pick
        )
        for client in demands_bits:
            realised = allocation.served_bits.get(client, 0.0) / epoch_s
            self._average_bps[client] = (
                (1.0 - self.smoothing) * self._average_bps[client]
                + self.smoothing * max(realised, self.floor_bps)
            )
        return allocation


class TestPfFastPathEquivalence:
    def test_fast_path_matches_reference_closure(self):
        rng = np.random.default_rng(11)
        rates = {
            (c, s): float(rng.uniform(0.0, 5e6)) if rng.random() > 0.1 else 0.0
            for c in range(9)
            for s in range(6)
        }

        def rate_fn(client, sub):
            return rates[(client, sub)]

        fast = ProportionalFairScheduler()
        reference = _ReferencePfScheduler()
        demand_cases = [
            {c: float("inf") for c in range(9)},
            {c: 3e5 * (c + 1) for c in range(9)},
            {0: 0.0, 1: float("inf"), 2: 1e4, 5: 2e6, 8: float("inf")},
            {},
        ]
        for epoch, demands in enumerate(demand_cases * 3):
            a = fast.allocate(list(range(6)), dict(demands), rate_fn)
            b = reference.allocate(list(range(6)), dict(demands), rate_fn)
            assert a.served_bits == b.served_bits, f"case {epoch}"
            assert a.time_fraction == b.time_fraction, f"case {epoch}"
            assert fast._average_bps == reference._average_bps, f"case {epoch}"


class TestCheckpointState:
    def test_positions_and_serving_roundtrip(self):
        net = make_net(BACKEND_INCREMENTAL)
        moved = net.topology.clients[0]
        net.move_client(moved.client_id, 123.0, 456.0)
        roamer = net.topology.clients[1]
        target = next(
            ap.ap_id for ap in net.topology.aps if ap.ap_id != roamer.ap_id
        )
        net.reattach_client(roamer.client_id, target)

        state = net.state_dict()
        restored = make_net(BACKEND_INCREMENTAL)
        restored.load_state(state)
        assert restored.topology.client(moved.client_id).x == 123.0
        assert restored.topology.client(moved.client_id).y == 456.0
        assert restored.topology.client(roamer.client_id).ap_id == target
        assert restored._rx_rb_dbm == net._rx_rb_dbm
        for ap_id in net._rows_of_ap:
            assert np.array_equal(
                restored._rows_of_ap[ap_id], net._rows_of_ap[ap_id]
            )
        # Volatile caches restart cold.
        assert restored._ap_blocks == {}
        assert restored._harq_cache == {}

    def test_resumed_run_digest_matches_straight_through(self):
        def epoch_pass(net, start, n):
            policy = RotatingSubsetPolicy(
                [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
            )
            demands = {
                c.client_id: float("inf") for c in net.topology.clients
            }
            out = []
            for epoch in range(start, start + n):
                out.append(
                    net.run_epoch(epoch, policy.decide(epoch, None), demands)
                )
                mover = net.topology.clients[epoch % len(net.topology.clients)]
                net.move_client(
                    mover.client_id, 100.0 + 37.0 * epoch, 900.0 - 11.0 * epoch
                )
            return out

        straight = make_net(BACKEND_INCREMENTAL)
        full = epoch_pass(straight, 0, 4)

        first = make_net(BACKEND_INCREMENTAL)
        head = epoch_pass(first, 0, 2)
        net_state = first.state_dict()
        rng_state = first.rngs.state_dict()

        resumed = make_net(BACKEND_INCREMENTAL)
        resumed.load_state(net_state)
        resumed.rngs.load_state(rng_state)
        tail = epoch_pass(resumed, 2, 2)
        assert_epochs_identical(full, head + tail)
