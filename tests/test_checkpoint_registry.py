"""Registry completeness: every checkpointed subsystem's hash is *live*.

A subsystem whose ``state_dict`` misses mutable state would snapshot and
restore "successfully" while silently losing data -- the digests would
still match because both sides hash the same incomplete view.  These
tests close that hole from the public-API side: mutate each subsystem
through its ordinary interface and assert its state hash responds.
"""

import numpy as np
import pytest

from repro.experiments.db_outage import DbOutageRun
from repro.experiments.large_scale import TECH_CELLFI, SaturatedLteRun
from repro.core.interference.hopping import (
    ClientSense,
    HopperConfig,
    SubchannelHopper,
)
from repro.sim.checkpoint import (
    CheckpointRegistry,
    hash_state,
    registered_dataclasses,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.flows import Flow, FlowTracker
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.regulatory import EtsiComplianceRules
from repro.tvws.transport import RobustnessLog


def _hash(subsystem):
    """Hash any state_dict-bearing subsystem, Checkpointable or not."""
    return hash_state(subsystem.state_dict())


def _db_run():
    return DbOutageRun(
        seed=2,
        outages=((30.0, 25.0),),
        timeout_prob=0.05,
        drop_prob=0.05,
        latency_spike_prob=0.05,
        tail_s=60.0,
    )


class TestFullGraphCompleteness:
    def test_every_db_outage_subsystem_hash_evolves(self):
        # Driving the run end to end through public API only must move
        # EVERY registered hash: a frozen hash means dead state_dict.
        run = _db_run()
        before = run.registry.state_hashes()
        assert set(before) == {
            "sim",
            "rng",
            "database",
            "paws",
            "compliance",
            "robustness",
            "transport",
            "ap",
            "selector",
            "driver",
        }
        run.run()
        after = run.registry.state_hashes()
        frozen = [name for name in before if before[name] == after[name]]
        assert frozen == []

    def test_every_saturated_lte_subsystem_hash_evolves(self):
        run = SaturatedLteRun(
            TECH_CELLFI, seed=3, n_aps=3, clients_per_ap=3, epochs=4
        )
        before = run.registry.state_hashes()
        assert set(before) == {
            "rng",
            "net-rng",
            "net",
            "policy",
            "policy-rng",
            "driver",
        }
        run.step_epoch()
        run.step_epoch()
        after = run.registry.state_hashes()
        frozen = [name for name in before if before[name] == after[name]]
        # The scenario stream set is consumed at build time; epochs draw
        # from the network / policy streams instead.
        assert frozen == ["rng"]
        # ... but the scenario streams still hash live state:
        run.scenario.rngs.stream("probe").random()
        assert run.registry.state_hashes()["rng"] != after["rng"]


class TestTargetedPublicApiMutations:
    """One subsystem, one ordinary API call, one hash flip."""

    def test_simulator_heap_and_clock(self):
        sim = Simulator()
        registry = CheckpointRegistry(sim)
        tick = registry.register_callback("tick", lambda: None)
        h0 = registry.state_hashes()["sim"]
        sim.schedule(1.0, tick)
        h1 = registry.state_hashes()["sim"]
        assert h1 != h0
        sim.run(until=2.0)
        assert registry.state_hashes()["sim"] != h1

    def test_rng_streams(self):
        streams = RngStreams(7)
        streams.stream("a")  # materialise before hashing
        h0 = _hash(streams)
        streams.stream("a").random()
        assert _hash(streams) != h0
        h1 = _hash(streams)
        streams.stream("b")  # a new stream alone also changes state
        assert _hash(streams) != h1

    def test_spectrum_database(self):
        database = SpectrumDatabase(US_CHANNEL_PLAN)
        h0 = _hash(database)
        channel = US_CHANNEL_PLAN.channels[0].number
        database.withdraw_channel(channel)
        h1 = _hash(database)
        assert h1 != h0
        database.restore_channel(channel)
        assert _hash(database) != h1

    def test_compliance_rules(self):
        rules = EtsiComplianceRules()
        h0 = _hash(rules)
        rules.lease_granted("dev-1", expires_at=60.0)
        h1 = _hash(rules)
        assert h1 != h0
        rules.channel_lost("dev-1", now=10.0)
        assert _hash(rules) != h1

    def test_robustness_log(self):
        log = RobustnessLog()
        h0 = _hash(log)
        log.record(1.0, "primary-db", "retry", "attempt 2")
        assert _hash(log) != h0

    def test_flow_tracker(self):
        tracker = FlowTracker()
        h0 = _hash(tracker)
        tracker.arrive(Flow(client_id=1, arrival_s=0.0, size_bits=1e4))
        h1 = _hash(tracker)
        assert h1 != h0
        tracker.serve(1, 1e4, 0.0, 1.0)
        assert _hash(tracker) != h1

    def test_subchannel_hopper(self):
        hopper = SubchannelHopper(
            HopperConfig(n_subchannels=13), np.random.default_rng(5)
        )
        h0 = hash_state(hopper.state_dict())
        hopper.step(4, {})
        h1 = hash_state(hopper.state_dict())
        assert h1 != h0
        noisy = ClientSense(
            subband_cqi=[3] * 13,
            max_subband_cqi=[9] * 13,
            interference_detected=[True] * 13,
            scheduled_fraction={k: 1.0 for k in hopper.holdings},
        )
        hopper.step(4, {0: noisy})
        assert hash_state(hopper.state_dict()) != h1

    def test_paws_server_notification(self):
        run = _db_run()
        h0 = _hash(run.paws)
        run.paws.notify_spectrum_use(run.ap.device, 21, now=0.0)
        assert _hash(run.paws) != h0

    def test_transport_fault_log(self):
        run = _db_run()
        h0 = _hash(run.transport)
        run.transport.fault_log.append((0.0, "probe", "timeout"))
        assert _hash(run.transport) != h0

    def test_driver_boot_flag(self):
        run = _db_run()
        h0 = run.registry.state_hashes()["driver"]
        run.run_to_boot()
        assert run.registry.state_hashes()["driver"] != h0


class TestDataclassWhitelist:
    def test_expected_dataclasses_are_registered(self):
        names = registered_dataclasses()
        suffixes = {name.rsplit(".", 1)[-1] for name in names}
        assert {
            "Record",
            "Flow",
            "SelectorEvent",
            "SibMessage",
            "ReacquisitionTiming",
            "ClientObservation",
            "ApObservation",
            "ComplianceViolation",
            "Incumbent",
            "ChannelLease",
            "RetryPolicy",
            "FaultSpec",
        } <= suffixes
