"""Tests for the signal-level network-listen classifier."""

import numpy as np
import pytest

from repro.phy.netlisten import (
    CELLFI,
    IDLE,
    OTHER,
    PSS_LENGTH,
    PSS_ROOTS,
    NetworkListener,
    pss_sequence,
    synth_idle,
    synth_lte_burst,
    synth_wifi_burst,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestPssSequence:
    def test_length_and_dc_puncture(self):
        seq = pss_sequence(25)
        assert len(seq) == PSS_LENGTH
        assert seq[31] == 0.0

    def test_unit_amplitude_off_dc(self):
        seq = pss_sequence(29)
        magnitudes = np.abs(np.delete(seq, 31))
        assert np.allclose(magnitudes, 1.0)

    def test_roots_distinct(self):
        a, b = pss_sequence(25), pss_sequence(34)
        assert not np.allclose(a, b)

    def test_cross_root_correlation_low(self):
        a, b = pss_sequence(25), pss_sequence(29)
        cross = abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cross < 0.35

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            pss_sequence(26)


class TestClassification:
    def test_lte_identified_any_root(self):
        listener = NetworkListener()
        rng = _rng(1)
        for root in PSS_ROOTS:
            verdict = listener.classify(synth_lte_burst(root, 2048, 3.0, rng))
            assert verdict.occupancy == CELLFI
            assert verdict.pss_root == root

    def test_wifi_identified_as_other(self):
        listener = NetworkListener()
        rng = _rng(2)
        for _ in range(20):
            verdict = listener.classify(synth_wifi_burst(2048, 6.0, rng))
            assert verdict.occupancy == OTHER

    def test_noise_is_idle(self):
        listener = NetworkListener()
        rng = _rng(3)
        for _ in range(20):
            assert listener.classify(synth_idle(2048, rng)).occupancy == IDLE

    def test_strong_wifi_never_reads_as_lte(self):
        # The normalized coefficient is power-invariant: cranking Wi-Fi
        # power must not push it over the PSS threshold.
        listener = NetworkListener()
        rng = _rng(4)
        for snr in (10.0, 20.0, 30.0):
            verdict = listener.classify(synth_wifi_burst(2048, snr, rng))
            assert verdict.occupancy == OTHER

    def test_weak_lte_degrades_to_energy_classes(self):
        listener = NetworkListener()
        rng = _rng(5)
        verdict = listener.classify(synth_lte_burst(25, 2048, -15.0, rng))
        assert verdict.occupancy in (IDLE, OTHER)  # PSS buried in noise.

    def test_short_capture_rejected(self):
        with pytest.raises(ValueError):
            NetworkListener().classify(np.zeros(10, dtype=complex))

    def test_noise_floor_validated(self):
        with pytest.raises(ValueError):
            NetworkListener(noise_floor_power=0.0)

    def test_coefficient_in_unit_range(self):
        listener = NetworkListener()
        rng = _rng(6)
        for capture in (
            synth_lte_burst(25, 1024, 5.0, rng),
            synth_wifi_burst(1024, 5.0, rng),
            synth_idle(1024, rng),
        ):
            verdict = listener.classify(capture)
            assert 0.0 <= verdict.pss_coefficient <= 1.0 + 1e-9


class TestProbeIntegration:
    def test_probe_fn_drives_channel_selection(self):
        from repro.core.channel_selection import OccupancyProbe

        rng = _rng(7)
        listener = NetworkListener()

        def capture(channel: int):
            if channel == 14:
                return synth_wifi_burst(2048, 8.0, rng)
            if channel == 15:
                return synth_lte_burst(25, 2048, 5.0, rng)
            return synth_idle(2048, rng)

        probe = OccupancyProbe(listener.probe_fn(capture))
        assert probe.probe(14) == OTHER
        assert probe.probe(15) == CELLFI
        assert probe.probe(16) == IDLE

    def test_selector_prefers_idle_over_radio_classified(self):
        from repro.core.channel_selection import ChannelSelector, OccupancyProbe
        from repro.sim.engine import Simulator
        from repro.tvws.channels import US_CHANNEL_PLAN
        from repro.tvws.database import SpectrumDatabase
        from repro.tvws.paws import DeviceDescriptor, GeoLocation, PawsServer

        rng = _rng(8)
        listener = NetworkListener()

        def capture(channel: int):
            # Channels 14-15 busy with Wi-Fi; 16 hosts another CellFi cell;
            # 17+ idle.
            if channel in (14, 15):
                return synth_wifi_burst(2048, 8.0, rng)
            if channel == 16:
                return synth_lte_burst(34, 2048, 5.0, rng)
            return synth_idle(2048, rng)

        sim = Simulator()
        paws = PawsServer(SpectrumDatabase(US_CHANNEL_PLAN))
        started = []
        selector = ChannelSelector(
            sim=sim,
            paws=paws,
            device=DeviceDescriptor("nl-ap"),
            location=GeoLocation(0.0, 0.0),
            probe=OccupancyProbe(listener.probe_fn(capture)),
            radio_start=lambda ch, spec: started.append(ch),
            radio_stop=lambda: None,
        )
        selector.start()
        assert started == [17]  # Lowest *idle* channel, not lowest overall.
