"""Unit tests for the CQI/MCS tables."""

import pytest

from repro.phy.mcs import (
    CQI_OUT_OF_RANGE,
    LTE_CQI_TABLE,
    LTE_MIN_CODE_RATE,
    WIFI_MIN_CODE_RATE,
    code_rate_from_sinr,
    cqi_from_sinr,
    efficiency_from_cqi,
    efficiency_from_sinr,
    entry_for_cqi,
    shannon_efficiency,
)


class TestTableStructure:
    def test_fifteen_entries(self):
        assert len(LTE_CQI_TABLE) == 15

    def test_indices_sequential(self):
        assert [e.cqi for e in LTE_CQI_TABLE] == list(range(1, 16))

    def test_efficiency_monotone(self):
        effs = [e.efficiency for e in LTE_CQI_TABLE]
        assert effs == sorted(effs)

    def test_thresholds_monotone(self):
        thresholds = [e.min_sinr_db for e in LTE_CQI_TABLE]
        assert thresholds == sorted(thresholds)

    def test_cqi1_is_the_paper_low_rate(self):
        # Table 1: LTE coding rate goes down to ~0.1 (78/1024 = 0.076).
        assert LTE_CQI_TABLE[0].code_rate == pytest.approx(78 / 1024)
        assert LTE_MIN_CODE_RATE < 0.1 < WIFI_MIN_CODE_RATE

    def test_top_cqi_efficiency(self):
        # 64QAM 948/1024 -> 5.55 bit per resource element.
        assert LTE_CQI_TABLE[-1].efficiency == pytest.approx(5.554, abs=0.01)

    def test_modulations_consistent(self):
        for entry in LTE_CQI_TABLE:
            expected = {"QPSK": 2, "16QAM": 4, "64QAM": 6}[entry.modulation]
            assert entry.bits_per_symbol == expected


class TestCqiMapping:
    def test_below_range_is_zero(self):
        assert cqi_from_sinr(-10.0) == CQI_OUT_OF_RANGE

    def test_at_first_threshold(self):
        assert cqi_from_sinr(-6.7) == 1

    def test_high_sinr_saturates(self):
        assert cqi_from_sinr(40.0) == 15

    def test_monotone_in_sinr(self):
        previous = -1
        for sinr in range(-10, 30):
            cqi = cqi_from_sinr(float(sinr))
            assert cqi >= previous
            previous = cqi

    def test_each_threshold_maps_to_its_cqi(self):
        for entry in LTE_CQI_TABLE:
            assert cqi_from_sinr(entry.min_sinr_db) == entry.cqi
            assert cqi_from_sinr(entry.min_sinr_db - 0.01) == entry.cqi - 1


class TestLookups:
    def test_entry_for_cqi_bounds(self):
        with pytest.raises(ValueError):
            entry_for_cqi(0)
        with pytest.raises(ValueError):
            entry_for_cqi(16)

    def test_efficiency_zero_for_cqi0(self):
        assert efficiency_from_cqi(CQI_OUT_OF_RANGE) == 0.0

    def test_efficiency_from_sinr_roundtrip(self):
        assert efficiency_from_sinr(22.7) == LTE_CQI_TABLE[-1].efficiency

    def test_code_rate_zero_out_of_range(self):
        assert code_rate_from_sinr(-20.0) == 0.0

    def test_code_rate_median_band(self):
        # At ~6 dB (the drive test's mid-range SINR) the code rate is near
        # 1/2 -- the Figure 1(b) median.
        assert 0.3 < code_rate_from_sinr(6.0) < 0.65


class TestShannon:
    def test_caps_at_max(self):
        assert shannon_efficiency(60.0) == pytest.approx(5.55)

    def test_tracks_quantised_table_loosely(self):
        # The quantised efficiency should sit within ~1.2 bit/RE of the
        # gapped Shannon curve across the operating range.
        for entry in LTE_CQI_TABLE:
            analytic = shannon_efficiency(entry.min_sinr_db)
            assert abs(analytic - entry.efficiency) < 1.2

    def test_zero_at_deep_fade(self):
        assert shannon_efficiency(-30.0) < 0.01
