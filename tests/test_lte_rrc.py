"""Unit tests for EARFCN arithmetic, SIB messages and timing models."""

import pytest

from repro.lte.rrc import (
    AP_REBOOT_S,
    CELL_SEARCH_S,
    ReacquisitionTiming,
    SibMessage,
    cell_search_time_s,
    earfcn_from_frequency,
    frequency_from_earfcn,
)


class TestEarfcn:
    def test_band_base_is_zero(self):
        assert earfcn_from_frequency(470e6) == 0

    def test_100khz_raster(self):
        assert earfcn_from_frequency(470.1e6) == 1
        assert earfcn_from_frequency(473e6) == 30

    def test_roundtrip(self):
        for earfcn in (0, 1, 30, 1234):
            assert earfcn_from_frequency(frequency_from_earfcn(earfcn)) == earfcn

    def test_off_raster_rejected(self):
        with pytest.raises(ValueError):
            earfcn_from_frequency(470e6 + 50e3)

    def test_below_band_rejected(self):
        with pytest.raises(ValueError):
            earfcn_from_frequency(400e6)

    def test_negative_earfcn_rejected(self):
        with pytest.raises(ValueError):
            frequency_from_earfcn(-1)


class TestSib:
    def test_frequencies_derived(self):
        sib = SibMessage(
            downlink_earfcn=30,
            uplink_earfcn=30,
            max_ue_power_dbm=20.0,
            bandwidth_hz=5e6,
            cell_id=7,
        )
        assert sib.downlink_frequency_hz == pytest.approx(473e6)
        assert sib.uplink_frequency_hz == sib.downlink_frequency_hz


class TestTiming:
    def test_paper_measured_values(self):
        # Figure 6: 1 min 36 s reboot, 56 s cell search.
        assert AP_REBOOT_S == 96.0
        assert CELL_SEARCH_S == 56.0

    def test_vacate_within_etsi_deadline(self):
        timing = ReacquisitionTiming()
        assert timing.time_to_vacate() < 60.0

    def test_resume_is_reboot_plus_search(self):
        timing = ReacquisitionTiming()
        assert timing.time_to_resume() == pytest.approx(96.0 + 56.0)

    def test_cell_search_model_reduces_with_fewer_bands(self):
        # The paper: reconnect "can be further reduced by disabling unused
        # LTE bands".
        assert cell_search_time_s(1) < cell_search_time_s(6)

    def test_cell_search_model_matches_measurement(self):
        # Six bands at 8 s each + attach ~ the measured 56 s.
        assert cell_search_time_s(6) == pytest.approx(56.0)

    def test_zero_bands_rejected(self):
        with pytest.raises(ValueError):
            cell_search_time_s(0)
