"""Fault-tolerant shard supervision: chaos recovery must be bit-identical.

The robustness net for ``repro.sim.shard``'s :class:`ShardSupervisor`:
seeded chaos schedules (worker kills, stalls, malformed replies, latency
spikes) hit the supervised churn-fuzz scenario and every surviving run
must produce per-epoch digests *bitwise identical* to the fault-free
unsharded incremental backend -- recovery respawns the worker from the
last merged snapshot and replays the op journal, so a fault is never
allowed to leak into the physics.  Exhausting the retry budget must
degrade the shard to inline execution with a structured warning, never
abort, and never change a digest either.
"""

import multiprocessing as mp
import warnings

import pytest

from repro.lte.network import BACKEND_INCREMENTAL, AllSubchannelsPolicy
from repro.phy.resource_grid import ResourceGrid
from repro.sim.checkpoint import hash_state
from repro.sim.rng import RngStreams
from repro.sim.shard import (
    ChaosEvent,
    ChaosPolicy,
    ShardDegradedWarning,
    ShardedNetwork,
    SupervisionConfig,
)
from repro.sim.topology import grid_partition

from tests.test_lte_network_incremental import (
    CULL_DB,
    SEED,
    churn_run,
    make_channel,
    make_net,
    make_topology,
)
from tests.test_sim_shard import epoch_digest, shard_factory

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False

HAVE_FORK = "fork" in mp.get_all_start_methods()

N_EPOCHS = 8

#: Fixed deadline for process-mode tests: long enough that a healthy CI
#: worker never trips it, short enough that the stall test stays quick.
PROC_TIMEOUT_S = 30.0


def make_supervised(n_shards, mode="inline", chaos=None, **config_kwargs):
    channel = make_channel()
    topology = make_topology(channel)
    plan = grid_partition(topology, n_shards)
    return ShardedNetwork(
        topology,
        plan,
        shard_factory(CULL_DB),
        RngStreams(SEED),
        ResourceGrid(5e6),
        mode=mode,
        supervision=SupervisionConfig(**config_kwargs),
        chaos=chaos,
    )


@pytest.fixture(scope="module")
def reference_digests():
    """Fault-free unsharded digests the chaos arms are held to."""
    return [
        epoch_digest(r)
        for r in churn_run(make_net(BACKEND_INCREMENTAL, CULL_DB), N_EPOCHS)
    ]


def supervised_digests(net, n_epochs=N_EPOCHS):
    try:
        return [epoch_digest(r) for r in churn_run(net, n_epochs)]
    finally:
        net.close()


def assert_digests_match(digests, reference):
    assert len(digests) == len(reference)
    for epoch, (got, want) in enumerate(zip(digests, reference)):
        assert got == want, f"digest diverged at epoch {epoch}"


class TestFaultFreeSupervision:
    def test_supervision_alone_changes_nothing(self, reference_digests):
        net = make_supervised(2)
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)

    def test_snapshot_cadence(self, reference_digests):
        net = make_supervised(2, checkpoint_every=2)
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        # One baseline snapshot at attach plus one every 2 of 8 epochs.
        assert stats["snapshots"] == 1 + N_EPOCHS // 2
        assert stats["restarts"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisionConfig(retry_budget=-1)
        with pytest.raises(ValueError):
            SupervisionConfig(checkpoint_every=0)
        with pytest.raises(ValueError):
            SupervisionConfig(journal_cap=0)


class TestChaosRecoveryInline:
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("phase", ["partial", "commit"])
    def test_kill_recovers_bit_identical(
        self, reference_digests, n_shards, phase
    ):
        chaos = ChaosPolicy(
            events=(ChaosEvent("kill", 3, n_shards - 1, phase=phase),)
        )
        net = make_supervised(n_shards, chaos=chaos, checkpoint_every=3)
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert stats["replayed_ops"] > 0

    def test_malformed_reply_recovers_bit_identical(self, reference_digests):
        chaos = ChaosPolicy(events=(ChaosEvent("malformed", 2, 0),))
        net = make_supervised(2, chaos=chaos, checkpoint_every=3)
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["protocol_errors"] == 1
        assert stats["restarts"] == 1

    def test_repeated_kills_of_same_shard(self, reference_digests):
        chaos = ChaosPolicy(
            events=(
                ChaosEvent("kill", 2, 1),
                ChaosEvent("kill", 5, 1, phase="partial"),
            )
        )
        net = make_supervised(2, chaos=chaos, checkpoint_every=3)
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["restarts"] == 2

    def test_recovery_events_are_logged(self, reference_digests):
        chaos = ChaosPolicy(events=(ChaosEvent("kill", 3, 0),))
        net = make_supervised(2, chaos=chaos)
        log = net.supervisor.log
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        kinds = [event.kind for event in log.events]
        assert "chaos-kill" in kinds
        assert "worker-crash" in kinds
        assert "worker-respawn" in kinds

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_chaos_schedule_property(self, reference_digests, data):
        """Any seeded schedule of recoverable faults keeps bit-identity."""
        n_shards = data.draw(st.sampled_from([2, 4]), label="n_shards")
        n_events = data.draw(st.integers(1, 3), label="n_events")
        events = [
            ChaosEvent(
                kind=data.draw(
                    st.sampled_from(["kill", "malformed"]), label=f"kind{i}"
                ),
                epoch=data.draw(st.integers(1, N_EPOCHS - 1), label=f"epoch{i}"),
                shard=data.draw(
                    st.integers(0, n_shards - 1), label=f"shard{i}"
                ),
                phase=data.draw(
                    st.sampled_from(["partial", "commit"]), label=f"phase{i}"
                ),
            )
            for i in range(n_events)
        ]
        checkpoint_every = data.draw(
            st.sampled_from([1, 2, 3, 5]), label="checkpoint_every"
        )
        net = make_supervised(
            n_shards,
            chaos=ChaosPolicy(events=events),
            checkpoint_every=checkpoint_every,
        )
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestChaosRecoveryProcess:
    def test_sigkill_respawns_from_checkpoint(self, reference_digests):
        chaos = ChaosPolicy(events=(ChaosEvent("kill", 3, 1),))
        net = make_supervised(
            2,
            mode="process",
            chaos=chaos,
            checkpoint_every=3,
            phase_timeout_s=PROC_TIMEOUT_S,
        )
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1

    def test_indefinite_stall_detected_as_hang(self, reference_digests):
        # No delay: the worker stays SIGSTOPped until the barrier deadline
        # trips, so the supervisor must classify a hang and respawn.
        chaos = ChaosPolicy(events=(ChaosEvent("stall", 2, 0),))
        net = make_supervised(
            2,
            mode="process",
            chaos=chaos,
            checkpoint_every=2,
            phase_timeout_s=2.0,
        )
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["hangs"] == 1
        assert stats["restarts"] == 1

    def test_slow_spike_needs_no_recovery(self, reference_digests):
        # A latency spike resumes on its own: the deadline is generous, so
        # the barrier just waits it out -- no restart, same digests.
        chaos = ChaosPolicy(events=(ChaosEvent("slow", 2, 1, delay_s=0.2),))
        net = make_supervised(
            2,
            mode="process",
            chaos=chaos,
            phase_timeout_s=PROC_TIMEOUT_S,
        )
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["chaos_injected"] == 1
        assert stats["restarts"] == 0

    def test_rate_scheduled_chaos(self, reference_digests):
        # Probabilistic injection drawn from the policy's private RNG:
        # whatever fires, the digests must hold.
        chaos = ChaosPolicy(seed=11, rates={"kill": 0.2})
        net = make_supervised(
            2,
            mode="process",
            chaos=chaos,
            checkpoint_every=2,
            phase_timeout_s=PROC_TIMEOUT_S,
        )
        stats = net.supervisor.stats
        digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert stats["chaos_injected"] >= 1


class TestGracefulDegradation:
    def test_budget_exhaustion_degrades_inline(self, reference_digests):
        chaos = ChaosPolicy(events=(ChaosEvent("kill", 2, 1),))
        net = make_supervised(2, chaos=chaos, retry_budget=0)
        stats = net.supervisor.stats
        log = net.supervisor.log
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)
        assert any(
            issubclass(w.category, ShardDegradedWarning) for w in caught
        )
        assert stats["degraded"] == 1
        assert net.supervisor.degraded[1]
        assert "worker-degraded-inline" in [e.kind for e in log.events]

    def test_degraded_shard_survives_later_epochs(self, reference_digests):
        # Degrade early, then keep running: the inline replacement must
        # carry the rest of the run (including later cross-shard churn).
        chaos = ChaosPolicy(events=(ChaosEvent("kill", 1, 0),))
        net = make_supervised(2, chaos=chaos, retry_budget=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ShardDegradedWarning)
            digests = supervised_digests(net)
        assert_digests_match(digests, reference_digests)


class TestSupervisedStateRoundtrip:
    @staticmethod
    def _tail_digests(net, start_epoch, n_epochs):
        """Deterministic all-on epochs continuing from ``start_epoch``."""
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in net.topology.aps], net.grid.n_subchannels
        )
        allowed = policy.decide(start_epoch, None)
        demands = {
            c.client_id: float("inf") for c in net.topology.clients
        }
        return [
            epoch_digest(net.run_epoch(epoch, allowed, demands))
            for epoch in range(start_epoch, start_epoch + n_epochs)
        ]

    def test_snapshot_and_restore_keep_digests(self):
        # Churn for half the run, snapshot, keep driving the donor as the
        # reference tail -- then restore into a fresh supervised net and
        # drive the same tail with a chaos kill in the middle of it.
        half = N_EPOCHS // 2
        donor = make_supervised(2, checkpoint_every=2)
        try:
            churn_run(donor, half)
            state = donor.state_dict()
            # RNG streams are a separate checkpoint subsystem (a registry
            # would snapshot them alongside the network state).
            rng_state = donor.rngs.state_dict()
            reference_tail = self._tail_digests(donor, half, 3)
        finally:
            donor.close()
        chaos = ChaosPolicy(events=(ChaosEvent("kill", half + 1, 0),))
        net = make_supervised(2, chaos=chaos, checkpoint_every=2)
        try:
            net.rngs.load_state(rng_state)
            net.load_state(state)
            tail = self._tail_digests(net, half, 3)
            stats = dict(net.supervisor.stats)
        finally:
            net.close()
        assert tail == reference_tail
        assert stats["restarts"] == 1

    def test_state_dict_matches_unsharded(self):
        plain = make_net(BACKEND_INCREMENTAL, CULL_DB)
        churn_run(plain, 3)
        net = make_supervised(2, checkpoint_every=2)
        try:
            churn_run(net, 3)
            assert hash_state(net.state_dict()) == hash_state(
                plain.state_dict()
            )
        finally:
            net.close()


class TestDeferredErrorDedup:
    """Repeated identical worker op failures collapse to one obs event."""

    def _payload(self, signature, count):
        return {
            "deferred_ops": [
                {"signature": signature, "count": count, "traceback": "tb"}
            ]
        }

    def test_identical_reports_recorded_once_with_count(self):
        net = make_supervised(2)
        try:
            sig = "reattach: ValueError: unknown client 999"
            # A poisoned worker re-reports the same signatures at every
            # replying op; only the first report may become an event.
            net._note_error_report(0, self._payload(sig, 3))
            net._note_error_report(0, self._payload(sig, 3))
            net._note_error_report(0, self._payload(sig, 3))
            events = [
                e for e in net.events.events if e.kind == "worker-op-error"
            ]
            assert len(events) == 1
            assert events[0].source == "shard0"
            assert "x3" in events[0].detail
            assert sig in events[0].detail
        finally:
            net.close()

    def test_distinct_signatures_and_shards_get_their_own_event(self):
        net = make_supervised(2)
        try:
            sig_a = "reattach: ValueError: unknown client 999"
            sig_b = "move: KeyError: 7"
            net._note_error_report(0, self._payload(sig_a, 1))
            net._note_error_report(0, self._payload(sig_b, 2))
            net._note_error_report(1, self._payload(sig_a, 1))
            events = [
                e for e in net.events.events if e.kind == "worker-op-error"
            ]
            assert len(events) == 3
            assert {e.source for e in events} == {"shard0", "shard1"}
        finally:
            net.close()

    def test_non_deferred_payloads_are_ignored(self):
        net = make_supervised(2)
        try:
            net._note_error_report(0, "plain traceback text")
            net._note_error_report(0, {"other": 1})
            assert not [
                e for e in net.events.events if e.kind == "worker-op-error"
            ]
        finally:
            net.close()


class TestChaosPolicyParsing:
    def test_parse_full_grammar(self):
        policy = ChaosPolicy.parse(
            "kill@3:1,stall@5:0:0.3,seed=7,malformed=0.05"
        )
        assert policy.seed == 7
        assert policy.rates == {"malformed": 0.05}
        kinds = [(e.kind, e.epoch, e.shard) for e in policy.events]
        assert ("kill", 3, 1) in kinds
        assert ("stall", 5, 0) in kinds
        stall = next(e for e in policy.events if e.kind == "stall")
        assert stall.delay_s == 0.3

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@3:1",
            "kill@3",
            "kill=1.5",
            "bogus=1",
            "kill@3:1:x:y",
            "justtext",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            ChaosPolicy.parse(spec)

    def test_events_for_is_deterministic_and_bounded(self):
        policy = ChaosPolicy(
            events=(ChaosEvent("kill", 2, 5),), seed=3, rates={"stall": 0.5}
        )
        first = policy.events_for(2, 2)
        second = policy.events_for(2, 2)
        assert first == second
        # The explicit event targets shard 5: filtered out at 2 shards.
        assert all(e.shard < 2 for e in first)
        assert ChaosEvent("kill", 2, 5) in policy.events_for(2, 8)
