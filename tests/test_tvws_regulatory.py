"""Unit tests for the ETSI compliance monitor."""

import pytest

from repro.tvws.regulatory import (
    EtsiComplianceRules,
    MAX_EIRP_FIXED_DBM,
    MAX_EIRP_PORTABLE_DBM,
    VACATE_DEADLINE_S,
    max_eirp_for_device_type,
)


class TestPowerCaps:
    def test_fixed_cap_is_36(self):
        assert max_eirp_for_device_type("A") == 36.0

    def test_portable_cap_is_20(self):
        # This is why the paper's clients transmit at 20 dBm.
        assert max_eirp_for_device_type("B") == 20.0

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            max_eirp_for_device_type("C")


class TestLeaseDiscipline:
    def test_transmission_with_lease_is_compliant(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=100.0)
        monitor.transmission_started("ap", now=10.0, eirp_dbm=30.0)
        assert monitor.compliant

    def test_transmission_without_lease_flagged(self):
        monitor = EtsiComplianceRules()
        monitor.transmission_started("ap", now=10.0, eirp_dbm=30.0)
        assert not monitor.compliant
        assert monitor.violations[0].rule == "no-valid-lease"

    def test_transmission_after_lease_expiry_flagged(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=100.0)
        monitor.transmission_started("ap", now=150.0, eirp_dbm=30.0)
        assert not monitor.compliant

    def test_eirp_over_cap_flagged(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=100.0)
        monitor.transmission_started("ap", now=1.0, eirp_dbm=40.0)
        assert any(v.rule == "eirp-exceeded" for v in monitor.violations)

    def test_eirp_at_cap_allowed(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=100.0)
        monitor.transmission_started(
            "ap", now=1.0, eirp_dbm=MAX_EIRP_FIXED_DBM, max_eirp_dbm=MAX_EIRP_FIXED_DBM
        )
        assert monitor.compliant


class TestVacateDeadline:
    def test_prompt_vacate_compliant(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.transmission_started("ap", now=0.0, eirp_dbm=30.0)
        monitor.channel_lost("ap", now=100.0)
        monitor.transmission_stopped("ap", now=102.0)
        assert monitor.compliant

    def test_vacate_at_deadline_boundary(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.channel_lost("ap", now=100.0)
        monitor.transmission_stopped("ap", now=100.0 + VACATE_DEADLINE_S)
        assert monitor.compliant

    def test_late_vacate_flagged(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.channel_lost("ap", now=100.0)
        monitor.transmission_stopped("ap", now=170.0)
        assert any(v.rule == "vacate-deadline" for v in monitor.violations)

    def test_check_time_catches_lingering_transmitter(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.transmission_started("ap", now=0.0, eirp_dbm=30.0)
        monitor.channel_lost("ap", now=100.0)
        monitor.check_time(150.0)
        assert monitor.compliant  # Still within the deadline.
        monitor.channel_lost("ap", now=100.0)  # Marker survives (idempotent).
        monitor.check_time(200.0)
        assert not monitor.compliant

    def test_check_time_reports_once(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.transmission_started("ap", now=0.0, eirp_dbm=30.0)
        monitor.channel_lost("ap", now=0.0)
        monitor.check_time(100.0)
        monitor.check_time(200.0)
        assert len(monitor.violations) == 1

    def test_channel_lost_is_idempotent(self):
        monitor = EtsiComplianceRules()
        monitor.lease_granted("ap", expires_at=1000.0)
        monitor.channel_lost("ap", now=100.0)
        monitor.channel_lost("ap", now=150.0)  # Must keep the first time.
        monitor.transmission_stopped("ap", now=155.0)
        assert monitor.compliant
