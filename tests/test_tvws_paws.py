"""Unit tests for the PAWS protocol layer."""

import pytest

from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import Incumbent, SpectrumDatabase
from repro.tvws.paws import (
    AUTHORITATIVE_DENIALS,
    AvailableSpectrumRequest,
    DeviceDescriptor,
    ERROR_MISSING,
    ERROR_OUTSIDE_COVERAGE,
    GeoLocation,
    PawsServer,
    TRANSIENT_ERRORS,
)


def _server(**db_kwargs):
    return PawsServer(SpectrumDatabase(US_CHANNEL_PLAN, **db_kwargs))


def _request(x=0.0, y=0.0, t=0.0, serial="ap-1"):
    return AvailableSpectrumRequest(
        device=DeviceDescriptor(serial_number=serial),
        location=GeoLocation(x=x, y=y),
        request_time=t,
    )


class TestInit:
    def test_init_returns_ruleset(self):
        server = _server()
        response = server.init_device(DeviceDescriptor("ap-1"))
        assert response["rulesetInfos"][0]["rulesetId"] == "ETSI-EN-301-598"


class TestAvailableSpectrum:
    def test_returns_all_channels_when_clear(self):
        server = _server()
        response = server.available_spectrum(_request())
        assert response.ok
        assert len(response.spectra) == len(US_CHANNEL_PLAN)

    def test_excludes_incumbent_channels(self):
        server = _server()
        server.database.register_incumbent(Incumbent("tv", 20, 0, 0, 1000.0))
        response = server.available_spectrum(_request())
        assert 20 not in response.channel_numbers()
        assert 21 in response.channel_numbers()

    def test_spectrum_spec_fields(self):
        server = _server(lease_duration_s=100.0)
        response = server.available_spectrum(_request(t=50.0))
        spec = response.spec_for(14)
        assert spec.low_hz == 470e6
        assert spec.high_hz == 476e6
        assert spec.max_eirp_dbm == 36.0
        assert spec.expires_at == 150.0

    def test_outside_coverage_rejected(self):
        server = PawsServer(
            SpectrumDatabase(US_CHANNEL_PLAN), coverage_area_m=1000.0
        )
        response = server.available_spectrum(_request(x=5000.0))
        assert not response.ok
        assert response.error_code == ERROR_OUTSIDE_COVERAGE
        assert response.spectra == []

    def test_spec_for_missing_channel(self):
        server = _server()
        server.database.withdraw_channel(14)
        response = server.available_spectrum(_request())
        assert response.spec_for(14) is None


class TestNotifications:
    def test_use_notification_recorded(self):
        server = _server()
        device = DeviceDescriptor("ap-1")
        server.notify_spectrum_use(device, 20, now=42.0)
        notes = server.use_notifications
        assert len(notes) == 1
        assert notes[0]["channel"] == 20
        assert notes[0]["time"] == 42.0

    def test_notifications_are_copies(self):
        server = _server()
        server.notify_spectrum_use(DeviceDescriptor("ap-1"), 20, now=1.0)
        notes = server.use_notifications
        notes.clear()
        assert len(server.use_notifications) == 1


class TestSerialisation:
    def test_request_to_json_shape(self):
        body = _request(x=10.0, y=20.0, t=5.0).to_json()
        assert body["method"] == "spectrum.paws.getSpectrum"
        assert body["deviceDesc"]["serialNumber"] == "ap-1"
        assert body["location"]["point"]["center"] == {"x": 10.0, "y": 20.0}

    def test_device_descriptor_types(self):
        fixed = DeviceDescriptor("ap", device_type="A").to_json()
        assert fixed["etsiEnDeviceType"] == "A"

    def test_spectrum_spec_json(self):
        server = _server()
        spec = server.available_spectrum(_request()).spectra[0]
        body = spec.to_json()
        assert body["frequencyRange"]["startHz"] == spec.low_hz
        assert body["maxPowerDBm"] == spec.max_eirp_dbm


class TestCoverageBounds:
    def test_negative_coordinates_rejected(self):
        # Regression: the coverage check used to accept the whole
        # [-coverage, +coverage]^2 square, contradicting the documented
        # [0, coverage]^2 service area.
        server = PawsServer(
            SpectrumDatabase(US_CHANNEL_PLAN), coverage_area_m=1000.0
        )
        for x, y in [(-1.0, 0.0), (0.0, -1.0), (-500.0, -500.0)]:
            response = server.available_spectrum(_request(x=x, y=y))
            assert not response.ok
            assert response.error_code == ERROR_OUTSIDE_COVERAGE

    def test_coverage_corners_accepted(self):
        server = PawsServer(
            SpectrumDatabase(US_CHANNEL_PLAN), coverage_area_m=1000.0
        )
        assert server.available_spectrum(_request(x=0.0, y=0.0)).ok
        assert server.available_spectrum(_request(x=1000.0, y=1000.0)).ok


class TestLeaseChurn:
    def test_discovery_polls_do_not_create_leases(self):
        server = _server()
        for k in range(10):
            response = server.available_spectrum(_request(t=float(k)))
            assert response.ok
        assert server.database.lease_table_size == 0

    def test_hundred_polls_keep_one_lease(self):
        server = _server()
        device = DeviceDescriptor(serial_number="ap-1")
        server.init_device(device)
        response = server.available_spectrum(_request(t=0.0))
        channel = response.channel_numbers()[0]
        server.notify_spectrum_use(device, channel, now=0.0)
        for k in range(1, 101):
            response = server.available_spectrum(_request(t=float(k)))
            assert response.ok
            assert channel in response.channel_numbers()
        assert server.database.lease_table_size == 1

    def test_renewal_extends_expiry(self):
        server = _server(lease_duration_s=100.0)
        device = DeviceDescriptor(serial_number="ap-1")
        server.notify_spectrum_use(device, 14, now=0.0)
        first = server.available_spectrum(_request(t=10.0))
        later = server.available_spectrum(_request(t=50.0))
        assert first.spec_for(14).expires_at == 110.0
        assert later.spec_for(14).expires_at == 150.0
        assert server.database.lease_table_size == 1

    def test_channel_switch_keeps_lease_table_bounded(self):
        server = _server()
        device = DeviceDescriptor(serial_number="ap-1")
        server.notify_spectrum_use(device, 14, now=0.0)
        server.available_spectrum(_request(t=1.0))
        server.notify_spectrum_use(device, 21, now=2.0)
        for k in range(3, 53):
            server.available_spectrum(_request(t=float(k)))
        # At most the stale lease on the old channel plus the live one.
        assert server.database.lease_table_size <= 2

    def test_quotes_match_granted_terms(self):
        server = _server(lease_duration_s=100.0)
        device = DeviceDescriptor(serial_number="ap-1")
        server.notify_spectrum_use(device, 14, now=0.0)
        response = server.available_spectrum(_request(t=20.0))
        in_use = response.spec_for(14)
        quoted = response.spec_for(21)
        assert in_use.expires_at == quoted.expires_at == 120.0
        assert in_use.max_eirp_dbm == quoted.max_eirp_dbm

    def test_two_devices_hold_independent_leases(self):
        server = _server()
        a = DeviceDescriptor(serial_number="ap-a")
        b = DeviceDescriptor(serial_number="ap-b")
        server.notify_spectrum_use(a, 14, now=0.0)
        server.notify_spectrum_use(b, 14, now=0.0)
        for k in range(1, 21):
            server.available_spectrum(_request(t=float(k), serial="ap-a"))
            server.available_spectrum(_request(t=float(k), serial="ap-b"))
        assert server.database.lease_table_size == 2


class TestStrictMode:
    def test_lenient_mode_auto_registers(self):
        server = _server()
        response = server.available_spectrum(_request(serial="never-inited"))
        assert response.ok
        assert "never-inited" in server._registered

    def test_strict_rejects_unregistered(self):
        server = PawsServer(SpectrumDatabase(US_CHANNEL_PLAN), strict=True)
        response = server.available_spectrum(_request(serial="never-inited"))
        assert not response.ok
        assert response.error_code == ERROR_MISSING
        assert response.spectra == []
        # The device was NOT silently registered by the failed request.
        assert "never-inited" not in server._registered

    def test_strict_accepts_after_init(self):
        server = PawsServer(SpectrumDatabase(US_CHANNEL_PLAN), strict=True)
        device = DeviceDescriptor("ap-1")
        server.init_device(device)
        response = server.available_spectrum(_request(serial="ap-1"))
        assert response.ok
        assert len(response.spectra) == len(US_CHANNEL_PLAN)

    def test_missing_is_transient_not_authoritative(self):
        # A resilient client repairs ERROR_MISSING by re-sending INIT;
        # it must never be treated as a loss of authorization.
        assert ERROR_MISSING in TRANSIENT_ERRORS
        assert ERROR_MISSING not in AUTHORITATIVE_DENIALS
        assert not (TRANSIENT_ERRORS & AUTHORITATIVE_DENIALS)
