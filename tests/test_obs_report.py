"""Barrier analytics + benchmark regression reporting (obs-report).

Exercises :mod:`repro.obs.report` on synthetic merged-timeline rows and
benchmark artifacts, and the ``python -m repro.cli obs-report``
subcommand end to end -- including the CI contract that an injected
timing regression makes it exit nonzero.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.report import (
    DEFAULT_TOLERANCE,
    barrier_report,
    bench_diff,
    render_bench_diff,
    render_report,
)


def span(name, wall_s, args=None, cat="supervisor"):
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "t": 0.0,
        "dur": 0.0,
        "args": args or {},
        "wall_ns": 0,
        "wall_dur_ns": int(wall_s * 1e9),
    }


def epoch_span(shard, epoch, wall_s):
    return span(
        "lte.epoch",
        wall_s,
        args={"shard": shard, "epoch": epoch},
        cat=f"shard{shard}.sim",
    )


def timeline():
    """Two shards, two epochs; shard 1 always slower; one recovery."""
    return [
        span("shard.barrier.partial", 0.01, args={"epoch": 0}),
        span("shard.barrier.commit", 0.05, args={"epoch": 0}),
        epoch_span(0, 0, 0.02),
        epoch_span(1, 0, 0.06),
        span("shard.barrier.partial", 0.01, args={"epoch": 1}),
        span("shard.barrier.commit", 0.07, args={"epoch": 1}),
        epoch_span(0, 1, 0.03),
        epoch_span(1, 1, 0.09),
        span("shard.respawn", 0.20, args={"of": 1, "kind": "crash"}),
        span("shard.replay", 0.15, args={"of": 1, "ops": 13}),
        span("partial", 0.0, args={"shard": 1, "salvaged": True},
             cat="shard1.sim"),
    ]


class TestBarrierReport:
    def test_phase_breakdown(self):
        report = barrier_report(timeline())
        assert report["epochs"] == 2
        commit = report["phases"]["commit"]
        assert commit["count"] == 2
        assert commit["total_s"] == pytest.approx(0.12)
        assert commit["max_s"] == pytest.approx(0.07)
        assert report["phases"]["partial"]["mean_s"] == pytest.approx(0.01)

    def test_straggler_attribution(self):
        report = barrier_report(timeline())
        # Shard 1 is the slowest shard in both epochs.
        assert report["stragglers"]["slowest_shard_counts"] == {1: 2}
        assert report["shards"][1]["slowest_epochs"] == 2
        assert report["shards"][0]["slowest_epochs"] == 0
        # Epoch 0: 0.06 of 0.08; epoch 1: 0.09 of 0.12.
        assert report["stragglers"]["mean_critical_share"] == pytest.approx(
            (0.06 / 0.08 + 0.09 / 0.12) / 2
        )
        assert report["stragglers"]["max_critical_share"] == pytest.approx(0.75)

    def test_recovery_accounting(self):
        recovery = barrier_report(timeline())["recovery"]
        assert recovery["respawns"] == 1
        assert recovery["respawn_wall_s"] == pytest.approx(0.20)
        assert recovery["replays"] == 1
        assert recovery["replay_wall_s"] == pytest.approx(0.15)
        assert recovery["replayed_ops"] == 13
        assert recovery["salvaged_rows"] == 1

    def test_empty_timeline(self):
        report = barrier_report([])
        assert report["epochs"] == 0
        assert report["phases"] == {}
        assert report["stragglers"]["mean_critical_share"] == 0.0

    def test_render_mentions_stragglers_and_recovery(self):
        text = render_report(barrier_report(timeline()))
        assert "Straggler attribution" in text
        assert "1 respawn(s)" in text
        assert "13 op(s)" in text


BASELINE = {
    "benchmark": "demo",
    "epochs": 5,  # not a timing: never compared
    "results": [
        {"cells": 10, "wall_s": 1.0, "note": "x"},
        {"cells": 50, "wall_s": 4.0, "nested": {"per_epoch_s": 0.5}},
    ],
}


def current(scale_50=1.0):
    doc = json.loads(json.dumps(BASELINE))
    doc["results"][1]["wall_s"] *= scale_50
    return doc


class TestBenchDiff:
    def test_identical_docs_have_no_regressions(self):
        rows = bench_diff(BASELINE, current())
        assert rows and not any(row["regression"] for row in rows)

    def test_timing_leaves_only(self):
        metrics = {row["metric"] for row in bench_diff(BASELINE, current())}
        assert metrics == {
            "results.10.wall_s",
            "results.50.wall_s",
            "results.50.nested.per_epoch_s",
        }

    def test_list_items_labelled_by_cells(self):
        rows = bench_diff(BASELINE, current(2.0))
        (bad,) = [row for row in rows if row["regression"]]
        assert bad["metric"] == "results.50.wall_s"
        assert bad["ratio"] == pytest.approx(2.0)

    def test_growth_within_tolerance_passes(self):
        rows = bench_diff(BASELINE, current(1.04), tolerance=1.05)
        assert not any(row["regression"] for row in rows)
        rows = bench_diff(BASELINE, current(1.06), tolerance=1.05)
        assert any(row["regression"] for row in rows)

    def test_default_tolerance(self):
        assert DEFAULT_TOLERANCE == pytest.approx(1.05)

    def test_nonpositive_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            bench_diff(BASELINE, current(), tolerance=0.0)

    def test_render_flags_regressions(self):
        text = render_bench_diff(bench_diff(BASELINE, current(2.0)), 1.05)
        assert "REGRESSION" in text
        assert "results.50.wall_s" in text

    def test_render_empty(self):
        assert "no shared timing" in render_bench_diff([], 1.05)


class TestObsReportCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_bench_diff_exits_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        assert cli_main(["obs-report", "--bench", base, base]) == 0
        out = capsys.readouterr().out
        assert "tolerance 1.05" in out
        assert "REGRESSION" not in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        bad = self.write(tmp_path, "bad.json", current(2.0))
        assert cli_main(
            ["obs-report", "--bench", base, bad, "--tolerance", "1.03"]
        ) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s) beyond 1.03x" in captured.err

    def test_tolerance_gates_the_exit_code(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        slight = self.write(tmp_path, "slight.json", current(1.2))
        assert cli_main(["obs-report", "--bench", base, slight]) == 1
        assert cli_main(
            ["obs-report", "--bench", base, slight, "--tolerance", "1.5"]
        ) == 0

    def test_trace_jsonl_report(self, tmp_path, capsys):
        path = tmp_path / "merged.jsonl"
        path.write_text(
            "".join(json.dumps(row) + "\n" for row in timeline())
        )
        assert cli_main(["obs-report", "--trace-jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Barrier phases" in out
        assert "Recovery overhead" in out

    def test_missing_artifact_exits_two(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert cli_main(["obs-report", "--bench", missing, missing]) == 2

    def test_no_inputs_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(["obs-report"])

    def test_bad_tolerance_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(["obs-report", "--tolerance", "-1"])
