"""Paper Section 5.4 / Figure 5: the two information-asymmetry cases.

(a) **Incorrect share**: an AP overestimates its share because it cannot
    sense a remote client.  The paper's resolution: "AP 1 will sense that
    there are less free subchannels available than it expected, and will
    not schedule any transmission in subchannels the client is facing
    interference on, reducing its effective share."

(b) **Suboptimal share**: an AP could safely take more spectrum but cannot
    know it ("It can also not be more aggressive in this case as it could
    unfairly take a share from AP 2").  The resolution is the share
    formula's conservatism itself.
"""

import numpy as np
import pytest

from repro.core.interference.manager import CellFiInterferenceManager
from repro.core.interference.share import compute_share
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology


class TestSuboptimalShare:
    """Figure 5(b): fairness wins over opportunism, by construction."""

    def test_ap_reserves_fair_share_not_slack(self):
        # AP 1 serves 2 clients and hears 4 contenders in total; even if
        # the other AP only ended up using 1 subchannel, AP 1's claim stays
        # floor(2 * 4 / 4) = 2 of 4 -- it cannot know the slack is safe.
        assert compute_share(4, 2, 4) == 2

    def test_share_independent_of_other_aps_usage(self):
        # The formula takes only (S, N_i, NP_i): there is no input through
        # which another AP's actual usage could tempt it.
        for phantom_usage in range(5):
            assert compute_share(4, 2, 4) == 2

    def test_absent_contenders_restore_full_share(self):
        # Should the three clients on the right disappear, the fair share
        # grows automatically at the next sensing epoch.
        assert compute_share(4, 2, 2) == 4


class TestIncorrectShare:
    """Figure 5(a): an unsensed client makes AP 0 over-claim; the system
    converges to a feasible *effective* allocation anyway."""

    def _world(self):
        # AP 0 with one client near it; AP 1 with a client in the middle.
        # The middle client (UE 2 in the figure) is power-controlled toward
        # its own nearby serving AP... here we place it so that AP 0 cannot
        # hear its PRACH yet suffers AP 0's downlink.
        aps = [AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, 900.0, 0.0)]
        clients = [
            ClientSite(0, 80.0, 0.0, ap_id=0),     # AP 0's own client.
            ClientSite(1, 700.0, 0.0, ap_id=1),    # The contested client.
            ClientSite(2, 860.0, 40.0, ap_id=1),   # AP 1 interior client.
        ]
        topology = Topology(area_m=1000.0, aps=aps, clients=clients)
        rngs = RngStreams(33)
        net = LteNetworkSimulator(
            topology, ResourceGrid(5e6),
            CompositeChannel(UrbanHataPathLoss()), rngs.fork("net"),
        )
        manager = CellFiInterferenceManager([0, 1], 13, rngs.fork("mgr"))
        return topology, net, manager

    def test_overclaim_exists(self):
        topology, net, manager = self._world()
        demands = {0: float("inf"), 1: float("inf"), 2: float("inf")}
        results = net.run(2, manager, lambda e: demands)
        obs = results[-1].observations
        # AP 0 does not hear the contested client's (power-controlled)
        # PRACH, so its contention estimate misses it.
        assert not net.prach_audible(1, 0)
        share_0 = compute_share(13, obs[0].n_active_clients,
                                obs[0].estimated_contenders)
        share_1 = compute_share(13, obs[1].n_active_clients,
                                obs[1].estimated_contenders)
        # The combined claims exceed the carrier: the (a)-case asymmetry.
        assert share_0 + share_1 > 13

    def test_system_still_converges_to_service(self):
        topology, net, manager = self._world()
        demands = {0: float("inf"), 1: float("inf"), 2: float("inf")}
        results = net.run(15, manager, lambda e: demands)
        tail = results[8:]
        # Every client, including the contested one, ends up served: the
        # detection -> bucket-drain -> hop loop resolves the over-claim.
        for cid in (0, 1, 2):
            mean_tput = np.mean([r.throughput_bps[cid] for r in tail])
            assert mean_tput > 50e3, f"client {cid} starved at steady state"

    def test_contested_client_sees_less_interference_over_time(self):
        topology, net, manager = self._world()
        demands = {0: float("inf"), 1: float("inf"), 2: float("inf")}
        results = net.run(15, manager, lambda e: demands)
        # Interference flags on the contested client's scheduled
        # subchannels should subside as holdings disentangle.
        def flagged_fraction(result):
            obs = result.observations[1].clients[1]
            scheduled = [
                k for k, frac in obs.scheduled_fraction.items() if frac > 0.0
            ]
            if not scheduled:
                return 1.0
            return np.mean([obs.interference_detected[k] for k in scheduled])

        early = np.mean([flagged_fraction(r) for r in results[1:4]])
        late = np.mean([flagged_fraction(r) for r in results[10:]])
        assert late <= early + 0.10
