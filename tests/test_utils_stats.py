"""Unit tests for repro.utils.stats."""

import math

import numpy as np
import pytest

from repro.utils.stats import Cdf, RunningStat, jain_fairness, percentile


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == pytest.approx(2.0)

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0], 50.0) == pytest.approx(1.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 9.0

    def test_matches_numpy(self):
        data = list(np.random.default_rng(0).normal(size=37))
        for q in (5, 25, 50, 75, 95):
            assert percentile(data, q) == pytest.approx(float(np.percentile(data, q)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_single_element(self):
        assert percentile([7.0], 33.0) == 7.0


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestCdf:
    def test_evaluate_simple(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(2.5) == pytest.approx(0.5)
        assert cdf.evaluate(4.0) == pytest.approx(1.0)
        assert cdf.evaluate(0.5) == 0.0

    def test_median(self):
        cdf = Cdf([10.0, 20.0, 30.0])
        assert cdf.median() == 20.0

    def test_fraction_below_strict(self):
        cdf = Cdf([1.0, 1.0, 2.0, 3.0])
        assert cdf.fraction_below(1.0) == 0.0
        assert cdf.fraction_below(1.5) == pytest.approx(0.5)

    def test_add_invalidates_cache(self):
        cdf = Cdf([1.0])
        assert cdf.evaluate(1.0) == 1.0
        cdf.add(2.0)
        assert cdf.evaluate(1.0) == pytest.approx(0.5)

    def test_points_monotonic(self):
        cdf = Cdf(np.random.default_rng(1).normal(size=500))
        pts = cdf.points(max_points=50)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_mean(self):
        assert Cdf([1.0, 3.0]).mean() == 2.0

    def test_empty_evaluate_raises(self):
        with pytest.raises(ValueError):
            Cdf().evaluate(1.0)

    def test_quantile_matches_percentile(self):
        data = [1.0, 5.0, 2.0, 8.0]
        assert Cdf(data).quantile(0.25) == percentile(data, 25.0)

    def test_len(self):
        assert len(Cdf([1, 2, 3])) == 3


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in data:
            stat.add(value)
        assert stat.mean == pytest.approx(5.0)
        assert stat.stddev == pytest.approx(2.0)

    def test_min_max(self):
        stat = RunningStat()
        for value in (3.0, -1.0, 7.0):
            stat.add(value)
        assert stat.min == -1.0
        assert stat.max == 7.0

    def test_empty_variance_zero(self):
        assert RunningStat().variance == 0.0

    def test_merge_matches_sequential(self):
        rng = np.random.default_rng(2)
        a_data = rng.normal(size=20)
        b_data = rng.normal(loc=3.0, size=30)
        a, b, combined = RunningStat(), RunningStat(), RunningStat()
        for v in a_data:
            a.add(float(v))
            combined.add(float(v))
        for v in b_data:
            b.add(float(v))
            combined.add(float(v))
        merged = a.merge(b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        a = RunningStat()
        a.add(5.0)
        merged = a.merge(RunningStat())
        assert merged.count == 1
        assert merged.mean == 5.0
