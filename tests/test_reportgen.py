"""Tests for the benchmark-report generator."""

import json
import pathlib

import pytest

from repro.utils.reportgen import (
    collect_results,
    load_sweep_records,
    render_report,
    sweep_metric_table,
    sweep_outcome_summary,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig1.txt").write_text("figure one body\n")
    (directory / "table1.txt").write_text("table one body\n")
    (directory / "custom.txt").write_text("custom artefact\n")
    return directory


class TestCollect:
    def test_reads_all_artefacts(self, results_dir):
        artefacts = collect_results(results_dir)
        assert set(artefacts) == {"fig1", "table1", "custom"}
        assert artefacts["fig1"] == "figure one body"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")


class TestRender:
    def test_sections_in_paper_order(self, results_dir):
        report = render_report(collect_results(results_dir))
        table_pos = report.index("Table 1")
        fig1_pos = report.index("Figure 1")
        assert table_pos < fig1_pos

    def test_unknown_artefacts_kept(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "custom artefact" in report
        assert "Other results" in report

    def test_missing_benchmarks_listed(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "Missing artefacts" in report
        assert "fig9a" in report

    def test_bodies_fenced(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "```\nfigure one body\n```" in report


class TestWrite:
    def test_writes_default_location(self, results_dir):
        output = write_report(results_dir)
        assert output == results_dir.parent / "REPORT.md"
        assert "figure one body" in output.read_text()

    def test_explicit_output(self, results_dir, tmp_path):
        target = tmp_path / "out.md"
        assert write_report(results_dir, target) == target
        assert target.exists()


def _record(seed, tech, status="ok", coverage=0.9):
    return {
        "task_id": seed,
        "config_hash": f"h{seed}{tech}",
        "scenario": "large_scale_saturated",
        "params": {"seed": seed, "tech": tech, "epochs": 4},
        "status": status,
        "attempts": 1,
        "wall_time_s": 0.5,
        "metrics": {} if status != "ok" else {
            "connected_fraction": coverage,
            "tech": tech,
            "throughput_bps": [1.0, 2.0],
        },
        "error": None if status == "ok" else "boom",
    }


@pytest.fixture
def sweep_log(tmp_path):
    path = tmp_path / "sweep.jsonl"
    records = [
        _record(1, "LTE", coverage=0.8),
        _record(2, "LTE", coverage=0.9),
        _record(1, "CellFi", coverage=1.0),
        _record(2, "CellFi", coverage=0.9),
        _record(3, "CellFi", status="timeout"),
    ]
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


class TestSweepAggregation:
    def test_load_skips_torn_lines(self, sweep_log):
        text = sweep_log.read_text()
        sweep_log.write_text(text + '{"task_id": 9, "status')
        assert len(load_sweep_records(sweep_log)) == 5

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sweep_records(tmp_path / "none.jsonl")

    def test_outcome_summary_counts(self, sweep_log):
        summary = sweep_outcome_summary(load_sweep_records(sweep_log))
        assert "large_scale_saturated" in summary
        row = [l for l in summary.splitlines() if "large_scale" in l][0]
        cells = [c.strip() for c in row.split("|")]
        assert cells[1:5] == ["5", "4", "0", "1"]

    def test_metric_table_groups_by_varying_non_seed_params(self, sweep_log):
        table = sweep_metric_table(load_sweep_records(sweep_log))
        # Grouped by tech (the only varying non-seed param), mean over seeds.
        cellfi = [l for l in table.splitlines() if l.startswith("CellFi")][0]
        assert "0.95" in cellfi
        lte = [l for l in table.splitlines() if l.startswith("LTE")][0]
        assert "0.85" in lte
        # Non-scalar metrics (lists, strings) are not tabulated.
        assert "throughput_bps" not in table

    def test_report_embeds_sweep_section(self, results_dir, sweep_log):
        output = write_report(results_dir, sweep_logs=[sweep_log])
        text = output.read_text()
        assert "sweep-sweep" in text
        assert "Sweep outcomes" in text


class TestCliIntegration:
    def test_report_command(self, results_dir, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(results_dir.parent)
        assert main(["report", "--results-dir", str(results_dir)]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_report_command_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--results-dir", str(tmp_path / "none")]) == 1
