"""Tests for the benchmark-report generator."""

import pathlib

import pytest

from repro.utils.reportgen import collect_results, render_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig1.txt").write_text("figure one body\n")
    (directory / "table1.txt").write_text("table one body\n")
    (directory / "custom.txt").write_text("custom artefact\n")
    return directory


class TestCollect:
    def test_reads_all_artefacts(self, results_dir):
        artefacts = collect_results(results_dir)
        assert set(artefacts) == {"fig1", "table1", "custom"}
        assert artefacts["fig1"] == "figure one body"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")


class TestRender:
    def test_sections_in_paper_order(self, results_dir):
        report = render_report(collect_results(results_dir))
        table_pos = report.index("Table 1")
        fig1_pos = report.index("Figure 1")
        assert table_pos < fig1_pos

    def test_unknown_artefacts_kept(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "custom artefact" in report
        assert "Other results" in report

    def test_missing_benchmarks_listed(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "Missing artefacts" in report
        assert "fig9a" in report

    def test_bodies_fenced(self, results_dir):
        report = render_report(collect_results(results_dir))
        assert "```\nfigure one body\n```" in report


class TestWrite:
    def test_writes_default_location(self, results_dir):
        output = write_report(results_dir)
        assert output == results_dir.parent / "REPORT.md"
        assert "figure one body" in output.read_text()

    def test_explicit_output(self, results_dir, tmp_path):
        target = tmp_path / "out.md"
        assert write_report(results_dir, target) == target
        assert target.exists()


class TestCliIntegration:
    def test_report_command(self, results_dir, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(results_dir.parent)
        assert main(["report", "--results-dir", str(results_dir)]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_report_command_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--results-dir", str(tmp_path / "none")]) == 1
