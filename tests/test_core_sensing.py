"""Unit tests for the CellFi sensing wrappers."""

import numpy as np
import pytest

from repro.core.interference.sensing import (
    CqiDropDetector,
    PrachContentionEstimator,
)


class TestPrachEstimator:
    def test_counts_distinct_clients(self):
        est = PrachContentionEstimator()
        est.hear(1, now=0.0)
        est.hear(2, now=0.1)
        est.hear(1, now=0.2)  # Duplicate.
        assert est.estimate(now=0.5) == 2

    def test_estimates_expire_after_ttl(self):
        # "This allows sensing nodes to expire each estimate after 1 second."
        est = PrachContentionEstimator(ttl_s=1.0)
        est.hear(1, now=0.0)
        assert est.estimate(now=0.9) == 1
        assert est.estimate(now=1.1) == 0

    def test_fresh_preamble_renews(self):
        est = PrachContentionEstimator(ttl_s=1.0)
        est.hear(1, now=0.0)
        est.hear(1, now=0.8)
        assert est.estimate(now=1.5) == 1

    def test_heard_clients(self):
        est = PrachContentionEstimator()
        est.hear(3, now=0.0)
        est.hear(7, now=0.0)
        assert est.heard_clients(now=0.5) == {3, 7}

    def test_empty(self):
        assert PrachContentionEstimator().estimate(now=10.0) == 0


class TestCqiDropDetector:
    def test_rates_match_paper_constants(self):
        rng = np.random.default_rng(1)
        detector = CqiDropDetector(rng)
        n = 20_000
        tp = sum(detector.verdict(True) for _ in range(n)) / n
        fp = sum(detector.verdict(False) for _ in range(n)) / n
        assert tp == pytest.approx(0.80, abs=0.01)
        assert fp == pytest.approx(0.02, abs=0.005)

    def test_perfect_detector(self):
        rng = np.random.default_rng(2)
        detector = CqiDropDetector(rng, true_positive=1.0, false_positive=0.0)
        assert detector.verdict(True)
        assert not detector.verdict(False)

    def test_vector_interface(self):
        rng = np.random.default_rng(3)
        detector = CqiDropDetector(rng, true_positive=1.0, false_positive=0.0)
        assert detector.verdicts([True, False, True]) == [True, False, True]

    def test_rate_ordering_enforced(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            CqiDropDetector(rng, true_positive=0.1, false_positive=0.5)
        with pytest.raises(ValueError):
            CqiDropDetector(rng, true_positive=1.5)
