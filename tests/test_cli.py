"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 1
        assert args.samples == 60

    def test_fig9a_lists(self):
        args = build_parser().parse_args(
            ["fig9a", "--densities", "6", "8", "--seeds", "3"]
        )
        assert args.densities == [6, 8]
        assert args.seeds == [3]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig9a"])
        assert args.spec == "fig9a"
        assert args.jobs >= 1
        assert args.retries == 1
        assert args.timeout is None
        assert args.out is None
        assert not args.resume

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            [
                "sweep", "fig9a", "--jobs", "4", "--resume", "--timeout", "60",
                "--out", "x.jsonl", "--densities", "4", "6", "--seeds", "1",
                "--techs", "LTE", "CellFi",
            ]
        )
        assert args.jobs == 4
        assert args.resume
        assert args.timeout == 60.0
        assert args.out == "x.jsonl"
        assert args.densities == [4, 6]
        assert args.techs == ["LTE", "CellFi"]

    def test_sweep_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig99"])

    def test_sweep_spec_builders_cover_all_choices(self):
        from repro.cli import SWEEP_SPECS, build_sweep_spec

        defaults = build_parser().parse_args(["sweep", "fig9a"])
        for name in SWEEP_SPECS:
            defaults.spec = name
            spec = build_sweep_spec(defaults)
            assert len(spec) >= 1, name


class TestExecution:
    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "vacate latency" in out
        assert "ETSI compliant: True" in out

    def test_prach_runs(self, capsys):
        assert main(["prach", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "complexity ratio" in out

    def test_convergence_runs(self, capsys):
        assert main(["convergence", "--sizes", "8", "--replications", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out

    def test_sweep_runs_convergence_grid(self, capsys, tmp_path):
        out_path = tmp_path / "conv.jsonl"
        code = main(
            [
                "sweep", "convergence", "--sizes", "8", "--fadings", "0.0",
                "--replications", "2", "--jobs", "2", "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cells (1 computed, 0 reused" in out
        assert "Sweep outcomes" in out
        assert out_path.exists()
        # Re-run with --resume: everything comes from the cache.
        code = main(
            [
                "sweep", "convergence", "--sizes", "8", "--fadings", "0.0",
                "--replications", "2", "--jobs", "2", "--out", str(out_path),
                "--resume",
            ]
        )
        assert code == 0
        assert "0 computed, 1 reused" in capsys.readouterr().out


class TestShardValidation:
    """Early validation of --shards / supervision / chaos combinations."""

    @staticmethod
    def _validate(argv):
        from repro.cli import _validate_shard_args

        _validate_shard_args(build_parser().parse_args(argv))

    def test_zero_shards_rejected(self):
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            self._validate(["fig9a", "--shards", "0"])

    def test_supervision_flags_require_shards(self):
        with pytest.raises(SystemExit, match="pass --shards N"):
            self._validate(["fig9a", "--chaos", "kill@2:0"])
        with pytest.raises(SystemExit, match="pass --shards N"):
            self._validate(["fig9b", "--shard-supervise"])
        with pytest.raises(SystemExit, match="pass --shards N"):
            self._validate(["fig9a", "--shards", "1", "--shard-retry-budget", "2"])

    def test_bad_chaos_spec_rejected(self):
        with pytest.raises(SystemExit, match="bad --chaos spec"):
            self._validate(["fig9a", "--shards", "2", "--chaos", "explode@1:0"])
        with pytest.raises(SystemExit, match="bad --chaos spec"):
            self._validate(["fig9a", "--shards", "2", "--chaos", "kill@x"])

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(SystemExit, match="--shard-retry-budget must be >= 0"):
            self._validate(
                ["fig9a", "--shards", "2", "--shard-retry-budget", "-1"]
            )

    def test_oracle_cannot_shard(self):
        with pytest.raises(SystemExit, match="Oracle"):
            self._validate(
                ["sweep", "fig9b", "--shards", "2", "--techs", "Oracle"]
            )

    def test_valid_supervised_combination_accepted(self):
        self._validate(
            [
                "fig9a", "--shards", "2", "--shard-supervise",
                "--chaos", "kill@3:1,seed=7,malformed=0.05",
                "--shard-retry-budget", "2",
            ]
        )

    def test_sweep_shard_flags_default_to_none(self):
        args = build_parser().parse_args(["sweep", "fig9a"])
        assert args.shard_supervise is None
        assert args.chaos is None
        assert args.shard_retry_budget is None
