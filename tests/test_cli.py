"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 1
        assert args.samples == 60

    def test_fig9a_lists(self):
        args = build_parser().parse_args(
            ["fig9a", "--densities", "6", "8", "--seeds", "3"]
        )
        assert args.densities == [6, 8]
        assert args.seeds == [3]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestExecution:
    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "vacate latency" in out
        assert "ETSI compliant: True" in out

    def test_prach_runs(self, capsys):
        assert main(["prach", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "complexity ratio" in out

    def test_convergence_runs(self, capsys):
        assert main(["convergence", "--sizes", "8", "--replications", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
