"""Golden-value regression net over the paper-figure pipelines.

Every entry in ``tests/golden/figures.json`` pins one sweep cell of a
figure pipeline (fig1 drive test, fig2 MAC comparison, fig9a coverage
grid, Theorem-1 convergence) at a fixed CI-scale seed, with explicit
per-metric tolerances.  A perf or refactoring PR that silently changes
what the figures compute fails here; a PR that *intends* to move the
numbers regenerates the file via ``tests/golden/regenerate.py`` and says
so.

The cells run through the sweep runner itself, so this is also an
end-to-end check that the runner reproduces the figure pipelines.
"""

import json
import pathlib

import pytest

from repro.experiments.sweep import SweepSpec, SweepTask, run_sweep

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "figures.json"


def _entries():
    return json.loads(GOLDEN_PATH.read_text())["entries"]


def _entry_id(entry):
    params = entry["params"]
    bits = [entry["figure"]]
    for key in ("seed", "n_aps", "tech", "n_nodes", "fading_p"):
        if key in params:
            bits.append(f"{key}{params[key]}")
    return "-".join(str(b) for b in bits)


@pytest.fixture(scope="module")
def measured():
    """Run every golden cell once, through the sweep runner."""
    entries = _entries()
    spec = SweepSpec(
        "golden",
        [SweepTask.make(e["scenario"], e["params"]) for e in entries],
    )
    result = run_sweep(spec, jobs=0)
    result.raise_on_failures()
    return result.metrics_by_hash()


@pytest.mark.parametrize("entry", _entries(), ids=_entry_id)
def test_figure_metrics_match_golden(entry, measured):
    key = SweepTask.make(entry["scenario"], entry["params"]).config_hash
    metrics = measured[key]
    for name, check in entry["metrics"].items():
        assert name in metrics, f"metric {name!r} disappeared"
        value, expected = metrics[name], check["value"]
        tolerance = check.get("atol", 0.0) + check.get("rtol", 0.0) * abs(expected)
        assert value == pytest.approx(expected, abs=tolerance), (
            f"{_entry_id(entry)}: {name} = {value!r}, golden {expected!r} "
            f"(±{tolerance:g}); if this change is intentional, regenerate "
            "tests/golden/figures.json via tests/golden/regenerate.py"
        )


def test_golden_covers_the_headline_figures():
    figures = {e["figure"] for e in _entries()}
    assert {"fig1", "fig2", "fig9a", "convergence"} <= figures


def test_golden_pins_coverage_throughput_and_convergence_metrics():
    """The ISSUE's key metrics are all under regression."""
    pinned = {name for e in _entries() for name in e["metrics"]}
    assert "coverage_fraction_1mbps" in pinned
    assert "connected_fraction" in pinned
    assert any(name.startswith("median_bps") for name in pinned)
    assert "mean_rounds" in pinned
