"""Unit tests for the spectrum database."""

import pytest

from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import ChannelLease, Incumbent, SpectrumDatabase


def _db(**kwargs):
    return SpectrumDatabase(US_CHANNEL_PLAN, **kwargs)


class TestIncumbents:
    def test_inactive_before_window(self):
        inc = Incumbent("mic", 20, 0.0, 0.0, 500.0, active_from=100.0)
        assert not inc.active_at(50.0)
        assert inc.active_at(100.0)

    def test_inactive_after_window(self):
        inc = Incumbent("mic", 20, 0.0, 0.0, 500.0, active_until=100.0)
        assert inc.active_at(99.0)
        assert not inc.active_at(100.0)

    def test_protects_inside_radius_only(self):
        inc = Incumbent("tv", 20, 0.0, 0.0, 500.0)
        assert inc.protects(300.0, 0.0, 0.0)
        assert not inc.protects(600.0, 0.0, 0.0)

    def test_register_validates_channel(self):
        db = _db()
        with pytest.raises(KeyError):
            db.register_incumbent(Incumbent("tv", 99, 0, 0, 100.0))


class TestAvailability:
    def test_all_available_when_empty(self):
        db = _db()
        assert len(db.available_channels(0, 0, 0.0)) == len(US_CHANNEL_PLAN)

    def test_incumbent_blocks_channel_locally(self):
        db = _db()
        db.register_incumbent(Incumbent("tv", 20, 0.0, 0.0, 1000.0))
        assert not db.channel_available(20, 100.0, 0.0, 0.0)
        assert db.channel_available(20, 5000.0, 0.0, 0.0)
        assert db.channel_available(21, 100.0, 0.0, 0.0)

    def test_time_bounded_incumbent(self):
        db = _db()
        db.register_incumbent(
            Incumbent("mic", 20, 0, 0, 1000.0, active_from=50.0, active_until=100.0)
        )
        assert db.channel_available(20, 0, 0, 0.0)
        assert not db.channel_available(20, 0, 0, 75.0)
        assert db.channel_available(20, 0, 0, 150.0)

    def test_withdraw_and_restore(self):
        db = _db()
        db.withdraw_channel(20)
        assert not db.channel_available(20, 0, 0, 0.0)
        db.restore_channel(20)
        assert db.channel_available(20, 0, 0, 0.0)

    def test_withdraw_unknown_channel_raises(self):
        with pytest.raises(KeyError):
            _db().withdraw_channel(99)


class TestLeases:
    def test_grant_on_available_channel(self):
        db = _db(lease_duration_s=600.0)
        lease = db.grant_lease("ap-1", 20, 0, 0, 100.0)
        assert lease is not None
        assert lease.expires_at == 700.0
        assert lease.valid_at(699.9)
        assert not lease.valid_at(700.0)

    def test_no_grant_on_blocked_channel(self):
        db = _db()
        db.withdraw_channel(20)
        assert db.grant_lease("ap-1", 20, 0, 0, 0.0) is None

    def test_lease_clipped_to_incumbent_start(self):
        db = _db(lease_duration_s=3600.0)
        db.register_incumbent(
            Incumbent("mic", 20, 0, 0, 1000.0, active_from=500.0)
        )
        lease = db.grant_lease("ap-1", 20, 0, 0, 100.0)
        assert lease is not None
        assert lease.expires_at == 500.0

    def test_lease_not_clipped_for_distant_incumbent(self):
        db = _db(lease_duration_s=3600.0)
        db.register_incumbent(
            Incumbent("mic", 20, 10_000.0, 0, 1000.0, active_from=500.0)
        )
        lease = db.grant_lease("ap-1", 20, 0, 0, 100.0)
        assert lease.expires_at == 3700.0

    def test_revalidation_catches_withdrawal(self):
        db = _db()
        lease = db.grant_lease("ap-1", 20, 0, 0, 0.0)
        assert db.lease_still_valid(lease, 10.0)
        db.withdraw_channel(20)
        assert not db.lease_still_valid(lease, 11.0)

    def test_revalidation_catches_expiry(self):
        db = _db(lease_duration_s=100.0)
        lease = db.grant_lease("ap-1", 20, 0, 0, 0.0)
        assert not db.lease_still_valid(lease, 150.0)

    def test_query_count_tracks_grants(self):
        db = _db()
        db.grant_lease("ap-1", 20, 0, 0, 0.0)
        db.grant_lease("ap-2", 21, 0, 0, 0.0)
        assert db.query_count == 2

    def test_bad_lease_duration_rejected(self):
        with pytest.raises(ValueError):
            _db(lease_duration_s=0.0)
