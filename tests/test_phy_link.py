"""Unit tests for the link budget and SINR computation."""

import pytest

from repro.phy.antenna import OmniAntenna, SectorAntenna
from repro.phy.link import LinkBudget, Radio, capped_spectral_efficiency, sinr_db
from repro.phy.propagation import CompositeChannel, FreeSpacePathLoss


class _Node:
    def __init__(self, x, y):
        self.x, self.y = x, y


def _budget(bandwidth_hz=5e6):
    channel = CompositeChannel(FreeSpacePathLoss(600e6))
    return LinkBudget(channel, bandwidth_hz)


class TestRxPower:
    def test_rx_power_matches_friis(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        rx = Radio(node=_Node(1000, 0), tx_power_dbm=20.0)
        expected = 30.0 - FreeSpacePathLoss(600e6).path_loss_db(1000.0)
        assert budget.rx_power_dbm(tx, rx) == pytest.approx(expected)

    def test_antenna_gains_applied_both_ends(self):
        budget = _budget()
        tx = Radio(
            node=_Node(0, 0), tx_power_dbm=30.0,
            antenna=SectorAntenna(peak_gain_dbi=7.0, boresight_deg=0.0),
        )
        rx = Radio(
            node=_Node(1000, 0), tx_power_dbm=20.0, antenna=OmniAntenna(2.0)
        )
        base = 30.0 - FreeSpacePathLoss(600e6).path_loss_db(1000.0)
        assert budget.rx_power_dbm(tx, rx) == pytest.approx(base + 7.0 + 2.0)

    def test_eirp_towards(self):
        tx = Radio(
            node=_Node(0, 0), tx_power_dbm=29.0,
            antenna=SectorAntenna(peak_gain_dbi=7.0, boresight_deg=0.0),
        )
        rx = Radio(node=_Node(100, 0), tx_power_dbm=20.0)
        assert tx.eirp_dbm_towards(rx) == pytest.approx(36.0)

    def test_bad_bandwidth_raises(self):
        with pytest.raises(ValueError):
            LinkBudget(CompositeChannel(FreeSpacePathLoss(600e6)), 0.0)


class TestSnrSinr:
    def test_snr_is_rx_minus_noise(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        assert budget.snr_db(tx, rx) == pytest.approx(
            budget.rx_power_dbm(tx, rx) - budget.noise_dbm(rx)
        )

    def test_sinr_without_interferers_equals_snr(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        assert budget.sinr_db(tx, rx) == pytest.approx(budget.snr_db(tx, rx))

    def test_equal_interferer_caps_sinr_near_zero(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        interferer = Radio(node=_Node(0, 0.1), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        assert budget.sinr_db(tx, rx, [interferer]) < 0.1

    def test_interferer_activity_weighting(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        interferer = Radio(node=_Node(100, 100), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        full = budget.sinr_db(tx, rx, [interferer], interferer_activity=[1.0])
        half = budget.sinr_db(tx, rx, [interferer], interferer_activity=[0.5])
        off = budget.sinr_db(tx, rx, [interferer], interferer_activity=[0.0])
        assert full < half < off
        assert off == pytest.approx(budget.snr_db(tx, rx))

    def test_activity_length_validated(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        with pytest.raises(ValueError):
            budget.sinr_db(tx, rx, [tx], interferer_activity=[0.5, 0.5])

    def test_activity_range_validated(self):
        budget = _budget()
        tx = Radio(node=_Node(0, 0), tx_power_dbm=30.0)
        rx = Radio(node=_Node(500, 0), tx_power_dbm=20.0)
        with pytest.raises(ValueError):
            budget.sinr_db(tx, rx, [tx], interferer_activity=[1.5])

    def test_noise_bandwidth_override(self):
        budget = _budget(5e6)
        rx = Radio(node=_Node(0, 0), tx_power_dbm=20.0)
        narrow = budget.noise_dbm(rx, bandwidth_hz=180e3)
        assert narrow < budget.noise_dbm(rx)


class TestHelpers:
    def test_sinr_db_function(self):
        # Signal -80, one interferer -90, noise -100: SINR ~ 9.5 dB.
        value = sinr_db(-80.0, [-90.0], -100.0)
        assert value == pytest.approx(9.54, abs=0.05)

    def test_sinr_db_no_interference(self):
        assert sinr_db(-80.0, [], -100.0) == pytest.approx(20.0)

    def test_capped_efficiency_caps(self):
        assert capped_spectral_efficiency(80.0, max_efficiency=6.0) == 6.0

    def test_capped_efficiency_matches_shannon_shape(self):
        low = capped_spectral_efficiency(0.0)
        high = capped_spectral_efficiency(15.0)
        assert high > low > 0.0
