"""Unit tests for the downlink schedulers."""

import pytest

from repro.lte.scheduler import (
    Allocation,
    ProportionalFairScheduler,
    RoundRobinScheduler,
)


def _flat_rate(rate):
    return lambda client, sub: rate


class TestAllocation:
    def test_client_throughput(self):
        alloc = Allocation(epoch_s=2.0, served_bits={1: 4e6})
        assert alloc.client_throughput_bps(1) == 2e6
        assert alloc.client_throughput_bps(99) == 0.0

    def test_fraction_default_zero(self):
        assert Allocation(epoch_s=1.0).fraction(1, 2) == 0.0

    def test_clients_on(self):
        alloc = Allocation(epoch_s=1.0, time_fraction={(1, 0): 0.5, (2, 0): 0.5, (1, 1): 1.0})
        assert sorted(alloc.clients_on(0)) == [1, 2]
        assert alloc.clients_on(1) == [1]


class TestRoundRobin:
    def test_equal_rates_equal_bits(self):
        scheduler = RoundRobinScheduler()
        alloc = scheduler.allocate(
            [0, 1], {1: float("inf"), 2: float("inf")}, _flat_rate(1e6)
        )
        assert alloc.served_bits[1] == pytest.approx(alloc.served_bits[2], rel=0.05)

    def test_total_bits_bounded_by_capacity(self):
        scheduler = RoundRobinScheduler()
        alloc = scheduler.allocate(
            [0, 1, 2], {1: float("inf"), 2: float("inf")}, _flat_rate(1e6)
        )
        assert sum(alloc.served_bits.values()) <= 3e6 * 1.0 + 1e-6

    def test_finite_demand_not_exceeded(self):
        scheduler = RoundRobinScheduler()
        alloc = scheduler.allocate([0, 1], {1: 100.0}, _flat_rate(1e6))
        assert alloc.served_bits[1] == pytest.approx(100.0)

    def test_leftover_capacity_goes_to_backlogged(self):
        scheduler = RoundRobinScheduler()
        alloc = scheduler.allocate(
            [0], {1: 1000.0, 2: float("inf")}, _flat_rate(1e6)
        )
        assert alloc.served_bits[1] == pytest.approx(1000.0)
        # Mini-slot granularity: client 2 gets all remaining whole slots.
        assert alloc.served_bits[2] == pytest.approx(1e6 * 49 / 50, rel=0.01)

    def test_zero_rate_client_not_scheduled(self):
        scheduler = RoundRobinScheduler()

        def rate(client, sub):
            return 0.0 if client == 1 else 1e6

        alloc = scheduler.allocate([0], {1: float("inf"), 2: float("inf")}, rate)
        assert alloc.served_bits[1] == 0.0
        assert alloc.served_bits[2] > 0.0

    def test_time_fractions_sum_to_one_per_subchannel(self):
        scheduler = RoundRobinScheduler()
        alloc = scheduler.allocate(
            [0, 1], {1: float("inf"), 2: float("inf")}, _flat_rate(1e6)
        )
        for sub in (0, 1):
            total = sum(
                frac for (c, s), frac in alloc.time_fraction.items() if s == sub
            )
            assert total == pytest.approx(1.0)

    def test_no_clients_no_bits(self):
        alloc = RoundRobinScheduler().allocate([0, 1], {}, _flat_rate(1e6))
        assert alloc.served_bits == {}


class TestProportionalFair:
    def test_equal_conditions_equal_split(self):
        scheduler = ProportionalFairScheduler()
        alloc = scheduler.allocate(
            [0, 1, 2], {1: float("inf"), 2: float("inf")}, _flat_rate(1e6)
        )
        assert alloc.served_bits[1] == pytest.approx(alloc.served_bits[2], rel=0.1)

    def test_airtime_fairness_with_unequal_rates(self):
        # PF equalises airtime, so throughput is proportional to rate.
        scheduler = ProportionalFairScheduler()

        def rate(client, sub):
            return 2e6 if client == 1 else 5e5

        alloc = scheduler.allocate([0], {1: float("inf"), 2: float("inf")}, rate)
        ratio = alloc.served_bits[1] / alloc.served_bits[2]
        assert ratio == pytest.approx(4.0, rel=0.2)

    def test_prefers_subchannel_quality(self):
        # A client only schedulable on one subchannel still gets served.
        scheduler = ProportionalFairScheduler()

        def rate(client, sub):
            if client == 1:
                return 1e6 if sub == 0 else 0.0
            return 1e6

        alloc = scheduler.allocate([0, 1], {1: float("inf"), 2: float("inf")}, rate)
        assert alloc.served_bits[1] > 0.0
        assert alloc.fraction(1, 1) == 0.0

    def test_average_persists_across_epochs(self):
        scheduler = ProportionalFairScheduler(smoothing=0.5)
        # Epoch 1: client 1 alone, builds up a high average.
        scheduler.allocate([0], {1: float("inf")}, _flat_rate(1e6))
        # Epoch 2: newcomer 2 should get more than half the airtime.
        alloc = scheduler.allocate(
            [0], {1: float("inf"), 2: float("inf")}, _flat_rate(1e6)
        )
        assert alloc.served_bits[2] >= alloc.served_bits[1]

    def test_demand_respected(self):
        scheduler = ProportionalFairScheduler()
        alloc = scheduler.allocate([0], {1: 500.0, 2: float("inf")}, _flat_rate(1e6))
        assert alloc.served_bits[1] == pytest.approx(500.0)

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(smoothing=0.0)

    def test_empty_subchannels_yield_nothing(self):
        alloc = ProportionalFairScheduler().allocate([], {1: float("inf")}, _flat_rate(1e6))
        assert alloc.served_bits[1] == 0.0
