"""Telemetry facade, runtime activation, engine integration, EventLog."""

import ast
import functools
import pathlib

from repro.obs import (
    EventLog,
    Record,
    Telemetry,
    activated,
    active,
    callback_site,
    disable,
    enable,
)
from repro.sim.engine import Simulator

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRuntime:
    def teardown_method(self):
        disable()

    def test_inactive_by_default(self):
        assert active() is None

    def test_enable_disable(self):
        tel = Telemetry()
        enable(tel)
        assert active() is tel
        disable()
        assert active() is None

    def test_activated_restores_previous(self):
        outer, inner = Telemetry(), Telemetry()
        with activated(outer):
            with activated(inner):
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_activated_restores_on_exception(self):
        tel = Telemetry()
        try:
            with activated(tel):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active() is None


class TestTelemetryFacade:
    def test_counters_gauges_histograms(self):
        tel = Telemetry()
        tel.inc("a.events")
        tel.inc("a.events", 2)
        tel.gauge("a.load", 0.5)
        tel.observe("a.lat", 0.02, edges=(0.01, 0.1, 1.0))
        snap = tel.snapshot()
        assert snap["counters"]["a.events"] == 3.0
        assert snap["gauges"]["a.load"] == 0.5
        assert snap["histograms"]["a.lat"]["count"] == 1

    def test_event_is_noop_without_tracer(self):
        tel = Telemetry(trace=False)
        tel.event("x", cat="sim")  # must not raise
        assert tel.tracer is None

    def test_span_records_sim_and_wall_time(self):
        tel = Telemetry(trace=True, profile=True)
        tel.set_time(10.0)
        with tel.span("work", cat="sim"):
            tel.set_time(12.5)
        record = tel.tracer.records[0]
        assert record.t == 10.0
        assert record.dur == 2.5
        assert record.wall_dur_ns >= 0
        sites = {row["site"] for row in tel.profiler.rows()}
        assert "work" in sites

    def test_snapshot_profile_opt_in(self):
        tel = Telemetry(profile=True)
        with tel.span("s"):
            pass
        assert "profile" not in tel.snapshot()
        assert "profile" in tel.snapshot(include_profile=True)

    def test_tick_uses_clock_by_default(self):
        tel = Telemetry()
        tel.inc("c")
        tel.set_time(7.0)
        tel.tick()
        assert tel.snapshot()["series"][0]["t"] == 7.0


class TestCallbackSite:
    def test_plain_function(self):
        def cb():
            pass

        site = callback_site(cb)
        assert site.endswith("test_plain_function.<locals>.cb")

    def test_partial_unwrapped(self):
        def cb(x):
            pass

        assert "cb" in callback_site(functools.partial(cb, 1))

    def test_bound_method(self):
        class Thing:
            def go(self):
                pass

        assert "Thing.go" in callback_site(Thing().go)

    def test_non_function_falls_back_to_repr(self):
        class Weird:
            def __call__(self):
                pass

        assert callback_site(Weird())  # non-empty, no crash


class TestEngineIntegration:
    def teardown_method(self):
        disable()

    def test_event_lifecycle_counters(self):
        tel = Telemetry()
        with activated(tel):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            victim = sim.schedule(2.0, lambda: None)
            victim.cancel()
            sim.run(until=3.0)
        counters = tel.snapshot()["counters"]
        assert counters["sim.events_scheduled"] == 2.0
        assert counters["sim.events_fired"] == 1.0
        assert counters["sim.events_cancelled"] == 1.0

    def test_fired_callbacks_are_traced_at_sim_time(self):
        tel = Telemetry(trace=True)
        with activated(tel):
            sim = Simulator()
            sim.schedule(1.5, lambda: None)
            sim.run(until=2.0)
        fired = [r for r in tel.tracer.records if r.ph == "X"]
        assert fired and fired[0].t == 1.5
        assert tel.now == 1.5

    def test_profiler_attributes_wall_time_to_sites(self):
        tel = Telemetry(profile=True)

        def busy():
            sum(range(1000))

        with activated(tel):
            sim = Simulator()
            sim.schedule(1.0, busy)
            sim.run(until=2.0)
        sites = {row["site"] for row in tel.profiler.rows()}
        assert any("busy" in site for site in sites)

    def test_telemetry_captured_at_init(self):
        # Enabling telemetry after the Simulator is built must not
        # change its run loop mid-flight (determinism guarantee).
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        tel = Telemetry()
        with activated(tel):
            sim.run(until=2.0)
        assert tel.snapshot()["counters"] == {}

    def test_results_identical_with_and_without_telemetry(self):
        def run():
            sim = Simulator()
            seen = []
            sim.schedule_every(0.5, lambda: seen.append(sim.now))
            sim.run(until=5.0)
            return seen

        bare = run()
        with activated(Telemetry(trace=True, profile=True)):
            instrumented = run()
        assert bare == instrumented


class TestEventLog:
    def teardown_method(self):
        disable()

    def test_record_row_shape(self):
        log = EventLog()
        log.record(1.0, "ap0", "hop", "ch 3 -> 5")
        assert log.to_rows() == [
            {"time": 1.0, "source": "ap0", "kind": "hop", "detail": "ch 3 -> 5"}
        ]

    def test_counts_sorted_by_kind(self):
        log = EventLog()
        log.record(1.0, "x", "b")
        log.record(2.0, "x", "a")
        log.record(3.0, "x", "a")
        assert log.counts() == {"a": 2, "b": 1}

    def test_mirrors_into_active_telemetry(self):
        tel = Telemetry(trace=True)
        log = EventLog()
        with activated(tel):
            log.record(4.0, "ap1", "retry", "attempt 2")
        counters = tel.snapshot()["counters"]
        assert counters["events.retry"] == 1.0
        assert tel.tracer.records[0].t == 4.0

    def test_records_are_immutable(self):
        record = Record(1.0, "s", "k")
        try:
            record.time = 2.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


def _print_calls(path):
    tree = ast.parse(path.read_text())
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


class TestNoStrayPrints:
    #: Modules allowed to print: the CLI itself, and the trace validator
    #: (a ``python -m`` entry point used by make trace-smoke).
    ALLOWED = {"cli.py", str(pathlib.Path("obs") / "validate.py")}

    def test_only_cli_and_validator_print(self):
        offenders = {}
        for path in sorted(SRC_ROOT.rglob("*.py")):
            rel = str(path.relative_to(SRC_ROOT))
            if rel in self.ALLOWED:
                continue
            lines = _print_calls(path)
            if lines:
                offenders[rel] = lines
        assert offenders == {}, f"print() outside the CLI: {offenders}"
