"""Integration tests for the Wi-Fi network simulator."""

import numpy as np
import pytest

from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology, random_topology
from repro.wifi.network import (
    CLIENT_STATION_OFFSET,
    STANDARD_80211AC,
    STANDARD_80211AF,
    WifiNetworkSimulator,
    WifiStandard,
)


def _single_cell(n_clients=3, offset_m=150.0):
    aps = [AccessPointSite(0, 0.0, 0.0)]
    clients = [
        ClientSite(i, offset_m + 10.0 * i, 0.0, ap_id=0) for i in range(n_clients)
    ]
    return Topology(area_m=1000.0, aps=aps, clients=clients)


def _net(topology, standard=STANDARD_80211AF, seed=1, **kwargs):
    return WifiNetworkSimulator(
        topology,
        CompositeChannel(UrbanHataPathLoss()),
        standard,
        RngStreams(seed),
        **kwargs,
    )


class TestConstruction:
    def test_all_clients_reachable_near_cell(self):
        net = _net(_single_cell())
        assert all(net.reachable.values())

    def test_distant_client_unreachable(self):
        topo = Topology(
            area_m=10_000.0,
            aps=[AccessPointSite(0, 0.0, 0.0)],
            clients=[ClientSite(0, 8000.0, 0.0, ap_id=0)],
        )
        net = _net(topo)
        assert not net.reachable[0]

    def test_client_station_ids_offset(self):
        net = _net(_single_cell())
        assert net.client_station_id(0) == CLIENT_STATION_OFFSET

    def test_enqueue_to_unreachable_is_noop(self):
        topo = Topology(
            area_m=10_000.0,
            aps=[AccessPointSite(0, 0.0, 0.0)],
            clients=[ClientSite(0, 8000.0, 0.0, ap_id=0)],
        )
        net = _net(topo)
        net.enqueue(0, 1e6)  # Must not raise.
        result = net._run(0.5)
        assert result.throughput_bps[0] == 0.0


class TestSaturated:
    def test_single_cell_throughput_positive(self):
        net = _net(_single_cell())
        result = net.run_saturated(1.0)
        assert all(t > 0.0 for t in result.throughput_bps.values())

    def test_failure_rate_zero_in_isolation(self):
        net = _net(_single_cell())
        result = net.run_saturated(1.0)
        assert result.failure_rate == 0.0

    def test_af_aggregate_below_channel_capacity(self):
        net = _net(_single_cell())
        result = net.run_saturated(1.0)
        total = sum(result.throughput_bps.values())
        assert total < 22e6  # 6 MHz 802.11af tops out near 21 Mb/s PHY.

    def test_deterministic_given_seed(self):
        topo = _single_cell()
        a = _net(topo, seed=5).run_saturated(0.5)
        b = _net(topo, seed=5).run_saturated(0.5)
        assert a.throughput_bps == b.throughput_bps

    def test_contention_reduces_per_client_share(self):
        solo = _net(_single_cell(n_clients=1)).run_saturated(1.0)
        shared = _net(_single_cell(n_clients=4)).run_saturated(1.0)
        assert max(shared.throughput_bps.values()) < max(
            solo.throughput_bps.values()
        )


class TestDynamic:
    def test_arrivals_drain(self):
        net = _net(_single_cell(n_clients=1))
        result = net.run_dynamic(2.0, [(0.1, 0, 1e5), (0.5, 0, 2e5)])
        assert result.throughput_bps[0] * result.duration_s == pytest.approx(3e5)

    def test_delivery_callback_reports_client_ids(self):
        net = _net(_single_cell(n_clients=2))
        seen = []
        net.set_delivery_callback(lambda cid, bits: seen.append(cid))
        net.run_dynamic(1.0, [(0.1, 0, 1e5), (0.1, 1, 1e5)])
        assert set(seen) == {0, 1}


class TestStandards:
    def test_standard_presets(self):
        assert STANDARD_80211AF.bandwidth_hz == 6e6
        assert STANDARD_80211AC.bandwidth_hz == 20e6
        assert STANDARD_80211AF.ap_tx_power_dbm == 30.0

    def test_long_term_sinr_includes_interference(self):
        # Two co-located cells: the rate-adaptation SINR must be well below
        # the clean SNR.
        topo = Topology(
            area_m=1000.0,
            aps=[AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, 200.0, 0.0)],
            clients=[
                ClientSite(0, 100.0, 0.0, ap_id=0),
                ClientSite(1, 100.0, 10.0, ap_id=1),
            ],
        )
        net = _net(topo)
        sid = net.client_station_id(0)
        sinr = net._long_term_sinr_db(0, sid)
        snr = net.medium.rx_dbm(0, sid) - net.noise_dbm
        assert sinr < snr - 2.0

    def test_interference_activity_zero_recovers_snr(self):
        topo = _single_cell()
        net = _net(topo, interference_activity=0.0)
        sid = net.client_station_id(0)
        sinr = net._long_term_sinr_db(0, sid)
        snr = net.medium.rx_dbm(0, sid) - net.noise_dbm
        assert sinr == pytest.approx(snr)
