"""Seed audit: no unseeded randomness anywhere in the tree.

Reproducibility rests on every random draw tracing back to an explicit
seed (usually through :class:`repro.sim.rng.RngStreams`).  Two patterns
break that chain silently:

* ``default_rng()`` with no argument -- seeded from the OS entropy pool,
  different every process;
* the legacy ``np.random`` module-level API (``np.random.rand``,
  ``np.random.seed``, ...) -- hidden global state shared across the whole
  interpreter, so one caller reseeding perturbs every other caller.

This is a lint rather than a runtime check so a violation names the exact
file and line in the failure message.  A line may opt out with a
``# seed-audit: ok`` comment (none currently need to).
"""

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent
SCANNED_ROOTS = ("src", "tests")

_SEEDLESS_DEFAULT_RNG = re.compile(r"default_rng\(\s*\)")
_MODULE_LEVEL_NP_RANDOM = re.compile(r"\bnp\.random\.([A-Za-z_][A-Za-z_0-9]*)")
#: np.random attributes that are constructors/types, not global-state draws.
_ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "PCG64"}
_OPT_OUT = "# seed-audit: ok"


def _python_files():
    # The audit file itself must spell out the forbidden patterns (docs
    # and self-tests), so it is the one file exempt from its own scan.
    me = pathlib.Path(__file__).resolve()
    for root in SCANNED_ROOTS:
        for path in sorted((REPO / root).rglob("*.py")):
            if path.resolve() != me:
                yield path


def _violations():
    found = []
    for path in _python_files():
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if _OPT_OUT in line:
                continue
            where = f"{path.relative_to(REPO)}:{lineno}"
            if _SEEDLESS_DEFAULT_RNG.search(line):
                found.append(f"{where}: seedless default_rng(): {line.strip()}")
            for match in _MODULE_LEVEL_NP_RANDOM.finditer(line):
                if match.group(1) not in _ALLOWED_NP_RANDOM:
                    found.append(
                        f"{where}: legacy global np.random API: {line.strip()}"
                    )
    return found


class TestSeedAudit:
    def test_scan_actually_sees_the_tree(self):
        files = list(_python_files())
        assert len(files) > 50, "seed audit is scanning a near-empty tree"
        assert any(p.name == "rng.py" for p in files)

    def test_no_seedless_or_global_randomness(self):
        violations = _violations()
        assert violations == [], "\n".join(
            ["unseeded randomness found:"] + violations
        )

    def test_the_patterns_catch_what_they_claim(self):
        # The audit is only as good as its regexes; pin their behaviour.
        assert _SEEDLESS_DEFAULT_RNG.search("rng = default_rng()")
        assert _SEEDLESS_DEFAULT_RNG.search("rng = np.random.default_rng( )")
        assert not _SEEDLESS_DEFAULT_RNG.search("np.random.default_rng(seed)")
        bad = _MODULE_LEVEL_NP_RANDOM.search("x = np.random.rand(3)")
        assert bad and bad.group(1) == "rand"
        ok = _MODULE_LEVEL_NP_RANDOM.search("g = np.random.default_rng(1)")
        assert ok and ok.group(1) in _ALLOWED_NP_RANDOM
