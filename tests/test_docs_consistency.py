"""Documentation consistency: guard DESIGN.md and README against rot."""

import importlib
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _read(name: str) -> str:
    return (REPO_ROOT / name).read_text()


class TestDesignDoc:
    def test_every_referenced_module_exists(self):
        text = _read("DESIGN.md")
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules, "DESIGN.md should reference repro modules"
        for dotted in sorted(modules):
            importlib.import_module(dotted)

    def test_every_referenced_benchmark_exists(self):
        text = _read("DESIGN.md")
        benches = set(re.findall(r"`(benchmarks/\w+\.py)`", text))
        assert benches
        for path in benches:
            assert (REPO_ROOT / path).is_file(), f"{path} missing"

    def test_every_referenced_test_file_exists(self):
        text = _read("DESIGN.md")
        tests = set(re.findall(r"`(tests/\w+\.py)`", text))
        for path in tests:
            assert (REPO_ROOT / path).is_file(), f"{path} missing"


class TestReadme:
    def test_quickstart_snippet_runs(self):
        text = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README should contain a python quickstart"
        # Shrink the snippet so the doc test stays fast.
        snippet = blocks[0].replace("n_aps=6", "n_aps=2").replace(
            "net.run(10", "net.run(2"
        )
        namespace = {}
        exec(compile(snippet, "README-quickstart", "exec"), namespace)
        assert namespace["results"], "quickstart must produce results"

    def test_examples_listed_exist(self):
        text = _read("README.md")
        examples = set(re.findall(r"`(examples/\w+\.py)`", text))
        assert len(examples) >= 3
        for path in examples:
            assert (REPO_ROOT / path).is_file(), f"{path} missing"


class TestExperimentsDoc:
    def test_every_referenced_benchmark_exists(self):
        text = _read("EXPERIMENTS.md")
        benches = set(re.findall(r"`(benchmarks/\w+\.py)`", text))
        assert len(benches) >= 12, "every figure needs a bench"
        for path in benches:
            assert (REPO_ROOT / path).is_file(), f"{path} missing"
