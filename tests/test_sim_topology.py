"""Unit tests for topology generation and queries."""

import math

import numpy as np
import pytest

from repro.sim.topology import (
    AccessPointSite,
    ClientSite,
    Topology,
    grid_topology,
    random_topology,
    reassociate_strongest,
)


def _rng():
    return np.random.default_rng(123)


class TestRandomTopology:
    def test_counts(self):
        topo = random_topology(_rng(), n_aps=5, clients_per_ap=4)
        assert len(topo.aps) == 5
        assert len(topo.clients) == 20

    def test_clients_within_bounds(self):
        topo = random_topology(_rng(), n_aps=8, clients_per_ap=6, area_m=1000.0)
        for client in topo.clients:
            assert 0.0 <= client.x <= 1000.0
            assert 0.0 <= client.y <= 1000.0

    def test_clients_within_range_of_spawning_ap(self):
        topo = random_topology(
            _rng(), n_aps=4, clients_per_ap=10, client_range_m=500.0
        )
        for client in topo.clients:
            ap = topo.ap(client.ap_id)
            assert client.distance_to(ap) <= 500.0 + 1e-6

    def test_min_client_distance_respected(self):
        topo = random_topology(
            _rng(), n_aps=3, clients_per_ap=10,
            client_range_m=400.0, min_client_distance_m=100.0,
        )
        # Clamped corner cases aside, interior clients obey the annulus.
        interior = [
            c for c in topo.clients
            if 400.0 < c.x < 1600.0 and 400.0 < c.y < 1600.0
        ]
        for client in interior:
            assert client.distance_to(topo.ap(client.ap_id)) >= 99.0

    def test_unique_client_ids(self):
        topo = random_topology(_rng(), n_aps=6, clients_per_ap=6)
        ids = [c.client_id for c in topo.clients]
        assert len(set(ids)) == len(ids)

    def test_zero_aps_raises(self):
        with pytest.raises(ValueError):
            random_topology(_rng(), n_aps=0, clients_per_ap=1)

    def test_bad_radii_raise(self):
        with pytest.raises(ValueError):
            random_topology(
                _rng(), n_aps=1, clients_per_ap=1,
                client_range_m=100.0, min_client_distance_m=200.0,
            )

    def test_reproducible(self):
        a = random_topology(np.random.default_rng(5), 4, 3)
        b = random_topology(np.random.default_rng(5), 4, 3)
        assert [(c.x, c.y) for c in a.clients] == [(c.x, c.y) for c in b.clients]


class TestTopologyQueries:
    def test_clients_of(self):
        topo = random_topology(_rng(), n_aps=3, clients_per_ap=2)
        for ap in topo.aps:
            for client in topo.clients_of(ap.ap_id):
                assert client.ap_id == ap.ap_id

    def test_unknown_ap_raises(self):
        topo = random_topology(_rng(), n_aps=2, clients_per_ap=1)
        with pytest.raises(KeyError):
            topo.ap(99)

    def test_unknown_client_raises(self):
        topo = random_topology(_rng(), n_aps=2, clients_per_ap=1)
        with pytest.raises(KeyError):
            topo.client(999)

    def test_duplicate_ap_ids_rejected(self):
        with pytest.raises(ValueError):
            Topology(
                area_m=100.0,
                aps=[AccessPointSite(0, 0, 0), AccessPointSite(0, 1, 1)],
                clients=[],
            )

    def test_client_referencing_unknown_ap_rejected(self):
        with pytest.raises(ValueError):
            Topology(
                area_m=100.0,
                aps=[AccessPointSite(0, 0, 0)],
                clients=[ClientSite(0, 1.0, 1.0, ap_id=7)],
            )

    def test_interference_graph_symmetric(self):
        topo = random_topology(_rng(), n_aps=5, clients_per_ap=3)
        graph = topo.interference_graph(
            lambda ap, client: ap.distance_to(client) < 600.0
        )
        for node, neighbours in graph.items():
            for other in neighbours:
                assert node in graph[other]

    def test_interference_graph_no_self_loops(self):
        topo = random_topology(_rng(), n_aps=5, clients_per_ap=3)
        graph = topo.interference_graph(lambda ap, client: True)
        for node, neighbours in graph.items():
            assert node not in neighbours


class TestGridTopology:
    def test_grid_counts(self):
        topo = grid_topology(n_aps_side=3, clients_per_ap=2, spacing_m=100.0)
        assert len(topo.aps) == 9
        assert len(topo.clients) == 18

    def test_grid_spacing(self):
        topo = grid_topology(n_aps_side=2, clients_per_ap=0, spacing_m=100.0)
        assert topo.aps[0].distance_to(topo.aps[1]) == pytest.approx(100.0)

    def test_clients_on_circle(self):
        topo = grid_topology(2, 4, 200.0, client_offset_m=50.0)
        for client in topo.clients:
            ap = topo.ap(client.ap_id)
            assert client.distance_to(ap) == pytest.approx(50.0)

    def test_bad_side_raises(self):
        with pytest.raises(ValueError):
            grid_topology(0, 1, 100.0)


class TestReassociation:
    def test_reassociates_to_lowest_loss(self):
        aps = [AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, 1000.0, 0.0)]
        # Client sits next to AP 1 but was spawned by AP 0.
        clients = [ClientSite(0, 990.0, 0.0, ap_id=0)]
        topo = Topology(area_m=1000.0, aps=aps, clients=clients)

        def loss(ap, client):
            return ap.distance_to(client)  # Monotone surrogate.

        new = reassociate_strongest(topo, loss)
        assert new.clients[0].ap_id == 1

    def test_preserves_positions_and_count(self):
        topo = random_topology(_rng(), n_aps=4, clients_per_ap=5)
        new = reassociate_strongest(topo, lambda ap, c: ap.distance_to(c))
        assert len(new.clients) == len(topo.clients)
        assert [(c.x, c.y) for c in new.clients] == [
            (c.x, c.y) for c in topo.clients
        ]

    def test_distance_association_is_stable(self):
        topo = random_topology(_rng(), n_aps=4, clients_per_ap=5)
        once = reassociate_strongest(topo, lambda ap, c: ap.distance_to(c))
        twice = reassociate_strongest(once, lambda ap, c: ap.distance_to(c))
        assert [c.ap_id for c in once.clients] == [c.ap_id for c in twice.clients]
