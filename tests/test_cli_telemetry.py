"""End-to-end telemetry through the CLI: flags, files, report section."""

import json

from repro.cli import main
from repro.obs import active
from repro.obs.validate import validate_chrome_trace, validate_file
from repro.utils.reportgen import telemetry_summary


class TestRunFlags:
    def test_traced_fig9a_produces_all_artefacts(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        rc = main([
            "fig9a", "--densities", "4", "--seeds", "1", "--epochs", "2",
            "--trace", str(trace), "--trace-jsonl", str(jsonl),
            "--metrics-out", str(metrics), "--profile",
        ])
        assert rc == 0
        # (a) a valid Chrome trace_event file.
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) > 0
        assert validate_file(jsonl) > 0
        # (b) metrics snapshot covering the instrumented subsystems,
        # with series points keyed by sim-time.
        snap = json.loads(metrics.read_text())
        scopes = {key.split(".")[0] for key in snap["counters"]}
        assert {"scheduler", "harq", "cqi", "prach", "hopping", "lte", "sim"} \
            <= scopes
        assert snap["series"] and all("t" in point for point in snap["series"])
        # (c) the profile table of top wall-time callback sites.
        out = capsys.readouterr().out
        assert "top 10 wall-time sites" in out or "Profile" in out

    def test_db_outage_covers_paws_scope(self, tmp_path):
        metrics = tmp_path / "m.json"
        main([
            "db-outage", "--seed", "1", "--outages", "60:30",
            "--timeout-prob", "0.1", "--metrics-out", str(metrics),
        ])
        snap = json.loads(metrics.read_text())
        scopes = {key.split(".")[0] for key in snap["counters"]}
        assert "paws" in scopes
        assert "robustness" in scopes
        assert "paws.latency_s" in snap["histograms"]

    def test_runtime_deactivated_after_run(self, tmp_path):
        main([
            "fig6", "--metrics-out", str(tmp_path / "m.json"),
        ])
        assert active() is None

    def test_no_flags_means_no_telemetry_files(self, tmp_path, capsys):
        rc = main(["fig6"])
        assert rc == 0
        assert list(tmp_path.iterdir()) == []


class TestSweepFlags:
    def test_sweep_embeds_and_merges_cell_telemetry(self, tmp_path):
        out = tmp_path / "cells.jsonl"
        metrics = tmp_path / "m.json"
        rc = main([
            "sweep", "convergence", "--sizes", "8", "--replications", "1",
            "--jobs", "0", "--out", str(out), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        logged = [json.loads(line) for line in out.read_text().splitlines()]
        assert all("telemetry" in row for row in logged)
        snap = json.loads(metrics.read_text())
        assert snap["sweep_cells"]["cells"] == len(logged)


class TestReportSection:
    def test_snapshot_renders_tables(self, tmp_path):
        metrics = tmp_path / "m.json"
        main([
            "db-outage", "--seed", "1", "--outages", "60:30",
            "--timeout-prob", "0.1", "--metrics-out", str(metrics),
        ])
        text = telemetry_summary(json.loads(metrics.read_text()))
        assert "Telemetry counters" in text
        assert "paws.requests" in text
        assert "p95" in text

    def test_report_cli_includes_telemetry_section(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1.txt").write_text("stub")
        metrics = tmp_path / "m.json"
        main([
            "fig6", "--metrics-out", str(metrics),
        ])
        rc = main([
            "report", "--results-dir", str(results),
            "--telemetry", str(metrics),
        ])
        assert rc == 0
        report = (tmp_path / "REPORT.md").read_text()
        assert "telemetry-m" in report
