"""Spatial shard engine: partitioning, bit-identity and boundary handover.

The headline invariance net for ``repro.sim.shard``: sharding is a pure
execution strategy, so the churn fuzz scenario (mobility / handover /
demand / decision churn including zero-activity epochs) must produce
per-epoch digests, merged snapshots and RNG stream states *bitwise
identical* to the unsharded incremental backend at shards ∈ {1, 2, 4} --
and the Hypothesis boundary walk holds the 2-shard engine to exact
equality with the scalar oracle while a UE random-walks across the shard
edge.
"""

import hashlib
import multiprocessing as mp

import numpy as np
import pytest

from repro.lte.network import (
    BACKEND_INCREMENTAL,
    BACKEND_SCALAR,
    BACKEND_VECTORIZED,
    AllSubchannelsPolicy,
    LteNetworkSimulator,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.checkpoint import hash_state
from repro.sim.rng import RngStreams
from repro.sim.shard import EPOCH_STREAMS, ShardedNetwork
from repro.sim.topology import (
    grid_partition,
    grid_topology,
    halo_ap_ids,
)

from tests.test_lte_network_incremental import (
    CULL_DB,
    SEED,
    assert_epochs_identical,
    churn_run,
    make_channel,
    make_net,
    make_topology,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False


def epoch_digest(result):
    """Same digest the benchmark uses: exact IEEE-754 round-trip reprs."""
    payload = repr(
        (
            sorted(result.served_bits.items()),
            sorted(result.connected.items()),
            [
                (
                    ap_id,
                    obs.n_active_clients,
                    obs.estimated_contenders,
                    [
                        (
                            cid,
                            c.subband_cqi,
                            c.max_subband_cqi,
                            c.interference_detected,
                            sorted(c.scheduled_fraction.items()),
                        )
                        for cid, c in sorted(obs.clients.items())
                    ],
                )
                for ap_id, obs in sorted(result.observations.items())
            ],
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def shard_factory(cull_loss_db=CULL_DB):
    """Deterministic per-worker rebuild of the churn-fuzz scenario."""

    def factory(ap_ids):
        channel = make_channel()
        topology = make_topology(channel)
        return LteNetworkSimulator(
            topology=topology,
            grid=ResourceGrid(5e6),
            channel=channel,
            rngs=RngStreams(SEED),
            backend=BACKEND_INCREMENTAL,
            cull_loss_db=cull_loss_db,
            shard_ap_ids=ap_ids,
        )

    return factory


def make_sharded(n_shards, mode="inline", cull_loss_db=CULL_DB):
    channel = make_channel()
    topology = make_topology(channel)
    plan = grid_partition(topology, n_shards)
    return ShardedNetwork(
        topology,
        plan,
        shard_factory(cull_loss_db),
        RngStreams(SEED),
        ResourceGrid(5e6),
        mode=mode,
    )


class TestGridPartition:
    def test_partition_covers_every_ap_exactly_once(self):
        topology = make_topology(make_channel())
        for n in (1, 2, 3, 4, 6):
            plan = grid_partition(topology, n)
            # Empty tiles are dropped, so the plan may be shorter than
            # requested -- but never empty-sharded and never over-length.
            assert 1 <= len(plan) <= n
            assert all(plan)
            flat = [ap_id for shard in plan for ap_id in shard]
            assert sorted(flat) == sorted(ap.ap_id for ap in topology.aps)
            assert len(set(flat)) == len(flat)

    def test_four_shards_tile_two_by_two(self):
        topology = grid_topology(4, 1, spacing_m=500.0)
        plan = grid_partition(topology, 4)
        # Row-major 2x2 tiles over a 4x4 AP grid: each tile holds one
        # quadrant's 2x2 block of AP ids.
        assert plan[0] == [0, 1, 4, 5]
        assert plan[1] == [2, 3, 6, 7]
        assert plan[2] == [8, 9, 12, 13]
        assert plan[3] == [10, 11, 14, 15]

    def test_more_shards_than_aps_rejected(self):
        topology = grid_topology(2, 1, spacing_m=100.0)
        # 16 shards over 4 APs would leave workerless shards: refuse
        # loudly instead of building them.
        with pytest.raises(ValueError, match="cannot split 4 APs into 16"):
            grid_partition(topology, 16)

    def test_empty_tiles_are_dropped_not_returned(self):
        # A degenerate line of co-located APs tiles into a grid where
        # some cells are empty; the plan must omit them entirely.
        topology = grid_topology(5, 1, spacing_m=100.0)
        plan = grid_partition(topology, 4)
        assert all(plan), f"workerless shard in {plan}"
        flat = [ap_id for shard in plan for ap_id in shard]
        assert sorted(flat) == sorted(ap.ap_id for ap in topology.aps)

    def test_invalid_shard_count_rejected(self):
        topology = grid_topology(2, 1, spacing_m=100.0)
        with pytest.raises(ValueError):
            grid_partition(topology, 0)
        with pytest.raises(ValueError):
            grid_partition(topology, -1)

    def test_halo_excludes_members_and_grows_with_margin(self):
        topology = grid_topology(4, 1, spacing_m=500.0)
        shard = grid_partition(topology, 4)[0]
        near = halo_ap_ids(topology, shard, margin_m=600.0)
        far = halo_ap_ids(topology, shard, margin_m=5000.0)
        assert not set(near) & set(shard)
        assert set(near) <= set(far)
        assert set(far) == {ap.ap_id for ap in topology.aps} - set(shard)


class TestShardModeGuards:
    def test_shard_view_requires_incremental_backend(self):
        channel = make_channel()
        topology = make_topology(channel)
        with pytest.raises(ValueError):
            LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=channel,
                rngs=RngStreams(SEED),
                backend=BACKEND_VECTORIZED,
                shard_ap_ids=[0, 1],
            )

    def test_unknown_shard_ap_ids_rejected(self):
        with pytest.raises(ValueError):
            shard_factory()([0, 999])

    def test_shard_view_requires_merged_prach_counts(self):
        net = shard_factory()([0, 1, 2])
        with pytest.raises(ValueError):
            net.run_epoch(0, {}, {})

    def test_overlapping_plan_rejected(self):
        channel = make_channel()
        topology = make_topology(channel)
        ids = [ap.ap_id for ap in topology.aps]
        with pytest.raises(ValueError):
            ShardedNetwork(
                topology,
                [ids, ids[:1]],
                shard_factory(),
                RngStreams(SEED),
                ResourceGrid(5e6),
                mode="inline",
            )

    def test_partial_plan_rejected(self):
        channel = make_channel()
        topology = make_topology(channel)
        ids = [ap.ap_id for ap in topology.aps]
        with pytest.raises(ValueError):
            ShardedNetwork(
                topology,
                [ids[:3]],
                shard_factory(),
                RngStreams(SEED),
                ResourceGrid(5e6),
                mode="inline",
            )


class TestShardInvariance:
    """The headline net: shards ∈ {1, 2, 4} ≡ unsharded, bit for bit."""

    N_EPOCHS = 12

    @pytest.fixture(scope="class")
    def baseline(self):
        net = make_net(BACKEND_INCREMENTAL, cull_loss_db=CULL_DB)
        results = churn_run(net, self.N_EPOCHS)
        return {
            "results": results,
            "digests": [epoch_digest(r) for r in results],
            "state_hash": hash_state(net.state_dict()),
            "rng_states": {
                name: net.rngs.stream(name).bit_generator.state
                for name in EPOCH_STREAMS
            },
            "stats": dict(net.last_epoch_stats),
        }

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_churn_fuzz_bit_identical_digests(self, baseline, n_shards):
        sharded = make_sharded(n_shards, mode="inline")
        results = churn_run(sharded, self.N_EPOCHS)
        assert [epoch_digest(r) for r in results] == baseline["digests"]
        assert_epochs_identical(results, baseline["results"])
        # Merged snapshot and epoch RNG streams land on the same bytes.
        assert hash_state(sharded.state_dict()) == baseline["state_hash"]
        for name in EPOCH_STREAMS:
            assert (
                sharded.rngs.stream(name).bit_generator.state
                == baseline["rng_states"][name]
            )
        # Per-AP work counters sum across shards to the unsharded totals.
        assert sharded.last_epoch_stats == baseline["stats"]

    def test_two_shards_identical_without_cull_horizon(self):
        # Bit-identity never depended on culling: owned rows span every
        # AP, so the full-interference configuration shards exactly too.
        unsharded = make_net(BACKEND_INCREMENTAL, cull_loss_db=None)
        expected = churn_run(unsharded, 6)
        sharded = make_sharded(2, mode="inline", cull_loss_db=None)
        assert_epochs_identical(churn_run(sharded, 6), expected)

    @pytest.mark.skipif(
        "fork" not in mp.get_all_start_methods(),
        reason="process workers need the fork start method",
    )
    def test_process_mode_matches_inline(self, baseline):
        sharded = make_sharded(2, mode="process")
        try:
            results = churn_run(sharded, self.N_EPOCHS)
            assert [epoch_digest(r) for r in results] == baseline["digests"]
            assert hash_state(sharded.state_dict()) == baseline["state_hash"]
        finally:
            sharded.close()

    def test_ownership_stays_a_partition_under_churn(self):
        sharded = make_sharded(4, mode="inline")
        churn_run(sharded, 8)
        owned_sets = [worker.net._owned_clients for worker in sharded.workers]
        all_ids = {c.client_id for c in sharded.topology.clients}
        union = set()
        total = 0
        for owned in owned_sets:
            union |= owned
            total += len(owned)
        assert union == all_ids
        assert total == len(all_ids)
        # And ownership matches the serving AP's shard everywhere.
        for client in sharded.topology.clients:
            owner = sharded.shard_of_client(client.client_id)
            assert client.client_id in owned_sets[owner]


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestBoundaryHandover:
    """UEs random-walking across the shard edge vs the scalar oracle.

    ``grid_topology(3, ...)`` under a 2-shard plan splits the map into a
    left and right column group; the walker starts on the seam and the
    walk repeatedly crosses it, so every example exercises cross-shard
    handover (row migration) at the epoch barrier.  The scalar oracle is
    the ground truth: equality proves no interference is double-counted
    and the share-formula inputs ``N_i`` (n_active_clients) and ``NP_i``
    (estimated_contenders) are exact.
    """

    SPACING_M = 400.0

    def _build_pair(self):
        def build_topology():
            return grid_topology(3, 2, spacing_m=self.SPACING_M)

        def oracle():
            topology = build_topology()
            return LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=make_channel(),
                rngs=RngStreams(SEED),
                backend=BACKEND_SCALAR,
                cull_loss_db=CULL_DB,
            )

        def factory(ap_ids):
            topology = build_topology()
            return LteNetworkSimulator(
                topology=topology,
                grid=ResourceGrid(5e6),
                channel=make_channel(),
                rngs=RngStreams(SEED),
                backend=BACKEND_INCREMENTAL,
                cull_loss_db=CULL_DB,
                shard_ap_ids=ap_ids,
            )

        topology = build_topology()
        plan = grid_partition(topology, 2)
        sharded = ShardedNetwork(
            topology,
            plan,
            factory,
            RngStreams(SEED),
            ResourceGrid(5e6),
            mode="inline",
        )
        return sharded, oracle()

    @staticmethod
    def _nearest_ap(topology, x, y):
        return min(
            topology.aps,
            key=lambda ap: ((ap.x - x) ** 2 + (ap.y - y) ** 2, ap.ap_id),
        ).ap_id

    @given(
        walk=st.lists(
            st.tuples(
                st.integers(-300, 300),
                st.integers(-300, 300),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_boundary_walk_matches_scalar_oracle(self, walk):
        sharded, oracle = self._build_pair()
        area = sharded.topology.area_m
        walker = sharded.topology.clients[0].client_id
        # Start the walker on the seam between the two shard columns.
        x, y = area / 2.0, area / 2.0
        demands = {
            c.client_id: float("inf") for c in sharded.topology.clients
        }
        policy = AllSubchannelsPolicy(
            [ap.ap_id for ap in sharded.topology.aps],
            sharded.grid.n_subchannels,
        )
        allowed = policy.decide(0, None)
        for epoch, (dx, dy) in enumerate(walk):
            x = min(max(x + dx, 0.0), area)
            y = min(max(y + dy, 0.0), area)
            target = self._nearest_ap(sharded.topology, x, y)
            for net in (sharded, oracle):
                net.move_client(walker, x, y)
                net.reattach_client(walker, target)
            got = sharded.run_epoch(epoch, allowed, demands)
            want = oracle.run_epoch(epoch, allowed, demands)
            # Never loses attachment: the walker is observed by exactly
            # its serving AP, in exactly one shard.
            serving = sharded.topology.client(walker).ap_id
            assert serving == target
            assert walker in got.observations[serving].clients
            owners = [
                k
                for k, worker in enumerate(sharded.workers)
                if walker in worker.net._owned_clients
            ]
            assert owners == [sharded.shard_of_client(walker)]
            # No client double-counted anywhere in the merged result.
            assert len(got.served_bits) == len(sharded.topology.clients)
            # Share-formula inputs S_i = N_i * S / NP_i match the oracle
            # exactly, as does everything downstream of them.
            for ap_id, obs in want.observations.items():
                assert got.observations[ap_id].n_active_clients == (
                    obs.n_active_clients
                )
                assert got.observations[ap_id].estimated_contenders == (
                    obs.estimated_contenders
                )
            assert_epochs_identical([got], [want])
