"""Unit tests for the OFDMA resource grid and TDD frames."""

import pytest

from repro.phy.resource_grid import (
    FDD_DOWNLINK,
    RB_BANDWIDTH_HZ,
    ResourceGrid,
    TDD_CONFIG_4,
    TddConfig,
    subband_size_rbs,
)


class TestTddConfig:
    def test_paper_config4_split(self):
        assert TDD_CONFIG_4.downlink_subframes == 7
        assert TDD_CONFIG_4.uplink_subframes == 2
        assert TDD_CONFIG_4.downlink_fraction == pytest.approx(0.7)
        assert TDD_CONFIG_4.uplink_fraction == pytest.approx(0.2)

    def test_frame_must_have_ten_subframes(self):
        with pytest.raises(ValueError):
            TddConfig(name="bad", downlink_subframes=8, uplink_subframes=4)


class TestSubbandSizes:
    def test_5mhz_gives_13_subchannels(self):
        # The paper: "there are 13 such subchannels on 5MHz channel".
        grid = ResourceGrid(5e6)
        assert grid.n_rbs == 25
        assert grid.n_subchannels == 13

    def test_20mhz_gives_25_subchannels(self):
        # "... and 25 subchannels on a 20 MHz channel."
        grid = ResourceGrid(20e6)
        assert grid.n_rbs == 100
        assert grid.n_subchannels == 25

    def test_subband_size_function(self):
        assert subband_size_rbs(6) == 1
        assert subband_size_rbs(25) == 2
        assert subband_size_rbs(50) == 3
        assert subband_size_rbs(100) == 4

    def test_unsupported_bandwidth_raises(self):
        with pytest.raises(ValueError):
            ResourceGrid(7e6)


class TestSubchannelGeometry:
    def test_rb_ranges_partition_carrier(self):
        grid = ResourceGrid(5e6)
        covered = []
        for sub in grid.all_subchannels():
            start, stop = grid.subchannel_rb_range(sub)
            covered.extend(range(start, stop))
        assert covered == list(range(grid.n_rbs))

    def test_tail_subchannel_may_be_short(self):
        grid = ResourceGrid(5e6)  # 25 RBs / 2 -> last subband has 1 RB.
        assert grid.subchannel_rbs(12) == 1
        assert grid.subchannel_rbs(0) == 2

    def test_subchannel_bandwidth(self):
        grid = ResourceGrid(5e6)
        assert grid.subchannel_bandwidth_hz(0) == pytest.approx(2 * RB_BANDWIDTH_HZ)

    def test_out_of_range_subchannel_raises(self):
        grid = ResourceGrid(5e6)
        with pytest.raises(ValueError):
            grid.subchannel_rbs(13)
        with pytest.raises(ValueError):
            grid.subchannel_rb_range(-1)


class TestRates:
    def test_peak_rate_plausible(self):
        # 5 MHz TDD config 4 at top CQI: ~12 Mb/s downlink.
        grid = ResourceGrid(5e6)
        peak = grid.peak_downlink_rate_bps()
        assert 10e6 < peak < 15e6

    def test_fdd_grid_faster_than_tdd(self):
        tdd = ResourceGrid(5e6, tdd=TDD_CONFIG_4)
        fdd = ResourceGrid(5e6, tdd=FDD_DOWNLINK)
        assert fdd.peak_downlink_rate_bps() > tdd.peak_downlink_rate_bps()

    def test_rate_linear_in_rbs(self):
        grid = ResourceGrid(5e6)
        one = grid.downlink_rate_bps(2.0, 1)
        ten = grid.downlink_rate_bps(2.0, 10)
        assert ten == pytest.approx(10 * one)

    def test_rate_linear_in_efficiency(self):
        grid = ResourceGrid(5e6)
        assert grid.downlink_rate_bps(4.0, 5) == pytest.approx(
            2 * grid.downlink_rate_bps(2.0, 5)
        )

    def test_uplink_uses_uplink_fraction(self):
        grid = ResourceGrid(5e6)
        dl = grid.downlink_rate_bps(2.0, 10)
        ul = grid.uplink_rate_bps(2.0, 10)
        assert ul / dl == pytest.approx(
            grid.tdd.uplink_fraction / grid.tdd.downlink_fraction
        )

    def test_rb_count_validated(self):
        grid = ResourceGrid(5e6)
        with pytest.raises(ValueError):
            grid.downlink_rate_bps(2.0, 26)
        with pytest.raises(ValueError):
            grid.uplink_rate_bps(2.0, -1)

    def test_subchannel_rate_accounts_for_short_tail(self):
        grid = ResourceGrid(5e6)
        full = grid.subchannel_downlink_rate_bps(2.0, 0)
        tail = grid.subchannel_downlink_rate_bps(2.0, 12)
        assert tail == pytest.approx(full / 2)

    def test_sum_of_subchannel_rates_is_carrier_rate(self):
        grid = ResourceGrid(5e6)
        total = sum(
            grid.subchannel_downlink_rate_bps(2.0, k) for k in grid.all_subchannels()
        )
        assert total == pytest.approx(grid.downlink_rate_bps(2.0, grid.n_rbs))
