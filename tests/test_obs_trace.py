"""Tracer exports: JSONL rows, Chrome trace_event JSON, validation."""

import json

import pytest

from repro.obs import Tracer, strip_wall
from repro.obs.trace import jsonl_without_wall, load_jsonl
from repro.obs.validate import (
    TraceValidationError,
    validate_chrome_trace,
    validate_file,
    validate_jsonl_row,
)


def _sample_tracer():
    tracer = Tracer()
    tracer.instant("sim.schedule", cat="sim", t=0.0, wall_ns=111)
    tracer.complete(
        "scheduler.allocate", cat="scheduler", t=1.0, dur=0.5,
        args={"clients": 3}, wall_ns=222, wall_dur_ns=333,
    )
    tracer.instant("cqi.drop_detected", cat="cqi", t=2.0)
    return tracer


class TestJsonl:
    def test_one_compact_line_per_record(self):
        text = _sample_tracer().to_jsonl()
        lines = text.strip().split("\n")
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert rows[0]["name"] == "sim.schedule"
        assert rows[1]["dur"] == 0.5
        assert rows[1]["args"] == {"clients": 3}

    def test_strip_wall_removes_only_wall_fields(self):
        row = json.loads(_sample_tracer().to_jsonl().split("\n")[1])
        stripped = strip_wall(row)
        assert "wall_ns" not in stripped
        assert "wall_dur_ns" not in stripped
        assert stripped["name"] == "scheduler.allocate"

    def test_wall_fields_vary_but_rest_is_stable(self):
        a = jsonl_without_wall([json.loads(l) for l in
                                _sample_tracer().to_jsonl().strip().split("\n")])
        b = jsonl_without_wall([json.loads(l) for l in
                                _sample_tracer().to_jsonl().strip().split("\n")])
        assert a == b

    def test_round_trip_through_file(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        rows = load_jsonl(str(path))
        assert len(rows) == 3
        assert rows[2]["t"] == 2.0


class TestChromeTrace:
    def test_sim_time_becomes_microseconds(self):
        payload = _sample_tracer().chrome_trace()
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["ts"] == 1.0 * 1e6
        assert spans[0]["dur"] == 0.5 * 1e6

    def test_each_category_gets_named_thread(self):
        payload = _sample_tracer().chrome_trace()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"sim", "scheduler", "cqi"}
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)

    def test_wall_time_preserved_in_args(self):
        payload = _sample_tracer().chrome_trace()
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["args"]["wall_us"] == pytest.approx(0.333)

    def test_instants_carry_thread_scope(self):
        payload = _sample_tracer().chrome_trace()
        instant = next(e for e in payload["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t"


class TestValidation:
    def test_valid_chrome_trace_passes(self):
        count = validate_chrome_trace(_sample_tracer().chrome_trace())
        assert count == 6  # 3 records + 3 thread-name metadata

    def test_valid_files_pass(self, tmp_path):
        tracer = _sample_tracer()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write_chrome(str(chrome))
        tracer.write_jsonl(str(jsonl))
        assert validate_file(str(chrome)) == 6
        assert validate_file(str(jsonl)) == 3

    def test_missing_trace_events_key_rejected(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"events": []})

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": []})

    def test_unknown_phase_rejected(self):
        payload = _sample_tracer().chrome_trace()
        payload["traceEvents"][-1]["ph"] = "Z"
        with pytest.raises(TraceValidationError):
            validate_chrome_trace(payload)

    def test_span_without_dur_rejected(self):
        payload = _sample_tracer().chrome_trace()
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        del span["dur"]
        with pytest.raises(TraceValidationError):
            validate_chrome_trace(payload)

    def test_jsonl_row_requires_time(self):
        with pytest.raises(TraceValidationError):
            validate_jsonl_row({"name": "x", "cat": "sim", "ph": "i"}, 0)

    def test_malformed_jsonl_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"\n')
        with pytest.raises(TraceValidationError):
            validate_file(str(path))
