"""Unit tests for the Theorem 1 hopping-game model."""

import networkx as nx
import numpy as np
import pytest

from repro.core.interference.theory import (
    HoppingGame,
    feasible_uniform_demands,
    random_conflict_graph,
    theorem1_round_bound,
)


def _path_graph(n):
    return nx.path_graph(n)


class TestBound:
    def test_formula(self):
        # c * M log n / ((1-p) gamma).
        bound = theorem1_round_bound(10, 13, 0.5, 0.0)
        assert bound == pytest.approx(13 * np.log(10) / 0.5)

    def test_fading_inflates_bound(self):
        base = theorem1_round_bound(10, 13, 0.5, 0.0)
        faded = theorem1_round_bound(10, 13, 0.5, 0.5)
        assert faded == pytest.approx(2 * base)

    def test_gamma_must_exceed_one_over_m(self):
        with pytest.raises(ValueError):
            theorem1_round_bound(10, 13, 0.01, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            theorem1_round_bound(0, 13, 0.5, 0.0)
        with pytest.raises(ValueError):
            theorem1_round_bound(10, 13, 0.5, 1.0)


class TestGameMechanics:
    def test_single_node_converges_immediately(self):
        graph = nx.Graph()
        graph.add_node(0)
        game = HoppingGame(graph, {0: 3}, 13, 0.0, np.random.default_rng(1))
        result = game.run()
        assert result.converged
        assert result.rounds_to_converge <= 1

    def test_no_neighbour_shares_a_subchannel(self):
        graph = _path_graph(5)
        demands = {v: 2 for v in graph.nodes}
        game = HoppingGame(graph, demands, 13, 0.0, np.random.default_rng(2))
        game.run()
        for a, b in graph.edges:
            assert not (game.held[a] & game.held[b])

    def test_holdings_meet_demand_on_convergence(self):
        graph = _path_graph(4)
        demands = {v: 3 for v in graph.nodes}
        game = HoppingGame(graph, demands, 13, 0.0, np.random.default_rng(3))
        result = game.run()
        assert result.converged
        for v in graph.nodes:
            assert len(game.held[v]) >= 3

    def test_fading_slows_convergence(self):
        rounds = {}
        for p in (0.0, 0.6):
            totals = []
            for seed in range(10):
                graph = _path_graph(6)
                demands = {v: 3 for v in graph.nodes}
                game = HoppingGame(graph, demands, 13, p, np.random.default_rng(seed))
                totals.append(game.run().rounds_to_converge)
            rounds[p] = np.mean(totals)
        assert rounds[0.6] > rounds[0.0]

    def test_converges_within_theorem_bound(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            graph = random_conflict_graph(16, 3.0, rng)
            demands = feasible_uniform_demands(graph, 13, gamma=0.3)
            game = HoppingGame(graph, demands, 13, 0.2, rng)
            gamma = game.demand_slack()
            assert gamma > 0.0
            result = game.run(max_rounds=5000)
            assert result.converged
            bound = theorem1_round_bound(16, 13, gamma, 0.2, constant=3.0)
            assert result.rounds_to_converge <= bound

    def test_demand_validation(self):
        graph = _path_graph(2)
        with pytest.raises(ValueError):
            HoppingGame(graph, {0: 14, 1: 0}, 13, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            HoppingGame(graph, {0: -1, 1: 0}, 13, 0.0, np.random.default_rng(0))

    def test_fading_probability_validation(self):
        graph = _path_graph(2)
        with pytest.raises(ValueError):
            HoppingGame(graph, {0: 1, 1: 1}, 13, 1.0, np.random.default_rng(0))


class TestHelpers:
    def test_demand_slack(self):
        graph = _path_graph(3)
        game = HoppingGame(
            graph, {0: 2, 1: 2, 2: 2}, 13, 0.0, np.random.default_rng(0)
        )
        # Worst closed neighbourhood: node 1 with both neighbours: 6/13.
        assert game.demand_slack() == pytest.approx(1.0 - 6.0 / 13.0)

    def test_feasible_uniform_demands_respect_gamma(self):
        rng = np.random.default_rng(4)
        graph = random_conflict_graph(20, 4.0, rng)
        demands = feasible_uniform_demands(graph, 13, gamma=0.3)
        game = HoppingGame(graph, demands, 13, 0.0, rng)
        assert game.demand_slack() >= 0.3 - 1e-9

    def test_random_graph_size(self):
        rng = np.random.default_rng(5)
        graph = random_conflict_graph(12, 3.0, rng)
        assert graph.number_of_nodes() == 12

    def test_random_graph_validation(self):
        with pytest.raises(ValueError):
            random_conflict_graph(0, 3.0, np.random.default_rng(0))

    def test_feasible_demands_validation(self):
        graph = _path_graph(3)
        with pytest.raises(ValueError):
            feasible_uniform_demands(graph, 13, gamma=0.0)
