"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callback_fires_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run(until=10.0)
        assert seen == [2.5]

    def test_clock_ends_at_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run(until=5.0)
        assert order == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run(until=1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_event_at_until_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(True))
        sim.run(until=5.0)
        assert seen == [True]

    def test_event_after_until_does_not_fire(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.1, lambda: seen.append(True))
        sim.run(until=5.0)
        assert seen == []
        sim.run(until=6.0)
        assert seen == [True]

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=4.0)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.run(until=2.0)
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run(until=4.0)
        assert seen == [3.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run(until=3.0)
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(True))
        event.cancel()
        sim.run(until=2.0)
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRecurring:
    def test_schedule_every_repeats(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_delay_override(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_cancelling_first_stops_chain(self):
        sim = Simulator()
        ticks = []
        event = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        event.cancel()
        sim.run(until=5.0)
        assert ticks == []

    def test_nonpositive_interval_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)


class TestRunUntilIdle:
    def test_drains_queue(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run_until_idle()
        assert seen == [1, 2]
        assert sim.now == 2.0

    def test_reentrant_run_raises(self):
        sim = Simulator()

        def nested():
            with pytest.raises(RuntimeError):
                sim.run(until=10.0)

        sim.schedule(1.0, nested)
        sim.run(until=2.0)


class TestRunUntilIdleClock:
    def test_finite_max_time_advances_clock_past_last_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run_until_idle(max_time=5.0)
        assert fired == [1.0]
        assert sim.now == 5.0

    def test_finite_max_time_with_empty_queue(self):
        sim = Simulator()
        sim.run_until_idle(max_time=3.0)
        assert sim.now == 3.0

    def test_event_beyond_max_time_stays_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run_until_idle(max_time=5.0)
        assert fired == []
        assert sim.now == 5.0
        assert sim.pending_events() == 1

    def test_followup_scheduling_sees_continuous_timeline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run_until_idle(max_time=4.0)
        # A relative delay from here must be measured from t=4, not t=1.
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [1.0, 5.0]
        assert sim.now == 5.0

    def test_unbounded_idle_stops_at_last_event(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        assert sim.now == 2.0


class TestLazyDeletionBounds:
    def test_pending_events_under_recurring_chains(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule_every(0.5, lambda: None)
        sim.run(until=100.0)
        # 10 chains x 200 fires each; exactly one future event per chain.
        assert sim.pending_events() == 10
        assert sim.queue_size() == 10

    def test_cancel_storm_compacts_on_next_schedule(self):
        sim = Simulator()
        events = [sim.schedule(10.0, lambda: None) for _ in range(1000)]
        for event in events[:900]:
            event.cancel()
        assert sim.pending_events() == 100
        # The next push notices cancelled entries outnumber live ones.
        sim.schedule(10.0, lambda: None)
        assert sim.pending_events() == 101
        assert sim.queue_size() == 101

    def test_timer_reset_churn_keeps_heap_bounded(self):
        sim = Simulator()
        # Typical timeout-reset pattern: arm a batch of timers, cancel them
        # all, re-arm.  10,000 cancelled events pass through the queue; the
        # heap must stay proportional to the live set, not the churn.
        for _ in range(100):
            events = [sim.schedule(10.0, lambda: None) for _ in range(100)]
            for event in events:
                event.cancel()
            assert sim.queue_size() <= 256
        assert sim.pending_events() == 0
        # One more schedule triggers a final compaction to the live set.
        sim.schedule(1.0, lambda: None)
        assert sim.queue_size() == 1

    def test_cancelled_recurring_chain_leaves_no_garbage_growth(self):
        sim = Simulator()
        ticks = []
        keeper = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        victims = [sim.schedule_every(1.0, lambda: None) for _ in range(200)]
        for event in victims:
            event.cancel()
        sim.run(until=50.0)
        assert len(ticks) == 50
        # The 200 cancelled chain heads never fired or rescheduled.
        assert sim.pending_events() == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        event.cancel()  # Late cancel of an already-fired event.
        assert sim.pending_events() == 0
        assert sim.queue_size() == 0


class TestScheduleGuards:
    def test_nan_delay_raises_with_clear_message(self):
        with pytest.raises(ValueError, match="NaN"):
            Simulator().schedule(float("nan"), lambda: None)

    def test_negative_delay_message_mentions_past(self):
        with pytest.raises(ValueError, match="past"):
            Simulator().schedule(-1.0, lambda: None)

    def test_nan_schedule_at_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_at(float("nan"), lambda: None)


class TestEventRepr:
    def test_repr_shows_callback_site_and_pending_state(self):
        sim = Simulator()

        def my_callback():
            pass

        event = sim.schedule(1.5, my_callback)
        text = repr(event)
        assert "my_callback" in text
        assert "pending" in text
        assert "t=1.500000" in text

    def test_repr_shows_cancelled_state(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_repr_shows_fired_state(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert "fired" in repr(event)
