"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callback_fires_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run(until=10.0)
        assert seen == [2.5]

    def test_clock_ends_at_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run(until=5.0)
        assert order == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run(until=1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_event_at_until_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(True))
        sim.run(until=5.0)
        assert seen == [True]

    def test_event_after_until_does_not_fire(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.1, lambda: seen.append(True))
        sim.run(until=5.0)
        assert seen == []
        sim.run(until=6.0)
        assert seen == [True]

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=4.0)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.run(until=2.0)
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run(until=4.0)
        assert seen == [3.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run(until=3.0)
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(True))
        event.cancel()
        sim.run(until=2.0)
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRecurring:
    def test_schedule_every_repeats(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_delay_override(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_cancelling_first_stops_chain(self):
        sim = Simulator()
        ticks = []
        event = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        event.cancel()
        sim.run(until=5.0)
        assert ticks == []

    def test_nonpositive_interval_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)


class TestRunUntilIdle:
    def test_drains_queue(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run_until_idle()
        assert seen == [1, 2]
        assert sim.now == 2.0

    def test_reentrant_run_raises(self):
        sim = Simulator()

        def nested():
            with pytest.raises(RuntimeError):
                sim.run(until=10.0)

        sim.schedule(1.0, nested)
        sim.run(until=2.0)
