"""Unit/integration tests for the system-level LTE simulator."""

import numpy as np
import pytest

from repro.lte.network import (
    AllSubchannelsPolicy,
    LteNetworkSimulator,
    STARVATION_THRESHOLD_BPS,
    rlf_probability,
)
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import (
    AccessPointSite,
    ClientSite,
    Topology,
    random_topology,
    reassociate_strongest,
)


def _channel(seed=1, sigma=0.0):
    shadow = LogNormalShadowing(sigma, seed=seed) if sigma else None
    return CompositeChannel(UrbanHataPathLoss(), shadow)


def _net(topology, seed=1, **kwargs):
    return LteNetworkSimulator(
        topology, ResourceGrid(5e6), _channel(seed), RngStreams(seed), **kwargs
    )


def _two_cell_topology(separation_m=2000.0, client_offset_m=100.0):
    aps = [
        AccessPointSite(0, 0.0, 0.0),
        AccessPointSite(1, separation_m, 0.0),
    ]
    clients = [
        ClientSite(0, client_offset_m, 0.0, ap_id=0),
        ClientSite(1, separation_m - client_offset_m, 0.0, ap_id=1),
    ]
    return Topology(area_m=separation_m, aps=aps, clients=clients)


class TestRlfModel:
    def test_safe_above_threshold(self):
        assert rlf_probability(5.0) == 0.0
        assert rlf_probability(20.0) == 0.0

    def test_ramps_below_threshold(self):
        assert 0.0 < rlf_probability(0.0) < rlf_probability(-5.0)

    def test_saturates(self):
        assert rlf_probability(-100.0) == 0.9


class TestRadioQueries:
    def test_clean_sinr_decreases_with_distance(self):
        topo = _two_cell_topology()
        net = _net(topo)
        near = net.clean_sinr_db(0, 0)
        far = net.sinr_db(0, 1, ())  # Served by the distant cell.
        assert near > far

    def test_interference_lowers_sinr(self):
        topo = _two_cell_topology(separation_m=500.0)
        net = _net(topo)
        assert net.sinr_db(0, 0, [1]) < net.clean_sinr_db(0, 0)

    def test_prach_audible_at_own_cell(self):
        topo = _two_cell_topology()
        net = _net(topo)
        assert net.prach_audible(0, 0)

    def test_prach_power_control_localises(self):
        # A client close to its AP transmits PRACH at low power, so a cell
        # 2 km away must not hear it.
        topo = _two_cell_topology(separation_m=2000.0, client_offset_m=100.0)
        net = _net(topo)
        assert not net.prach_audible(0, 1)

    def test_edge_client_heard_across(self):
        # A cell-edge client PRACHes at high power and is heard next door.
        topo = _two_cell_topology(separation_m=1000.0, client_offset_m=450.0)
        net = _net(topo)
        assert net.prach_audible(0, 1)

    def test_control_scale_bounds(self):
        topo = _two_cell_topology(separation_m=400.0)
        net = _net(topo)
        scale = net.control_interference_scale(0, 0, [1])
        assert 0.8 <= scale <= 1.0

    def test_control_scale_disabled(self):
        topo = _two_cell_topology(separation_m=400.0)
        net = _net(topo, control_interference=False)
        assert net.control_interference_scale(0, 0, [1]) == 1.0

    def test_control_scale_no_interferers(self):
        topo = _two_cell_topology()
        net = _net(topo)
        assert net.control_interference_scale(0, 0, []) == 1.0


class TestEpochs:
    def test_isolated_cells_serve_clients(self):
        topo = _two_cell_topology(separation_m=2000.0)
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        demands = {0: float("inf"), 1: float("inf")}
        result = net.run_epoch(0, policy.decide(0, None), demands)
        assert result.throughput_bps[0] > 1e6
        assert result.connected[0] and result.connected[1]

    def test_idle_network_serves_nothing(self):
        topo = _two_cell_topology()
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        result = net.run_epoch(0, policy.decide(0, None), {0: 0.0, 1: 0.0})
        assert result.throughput_bps[0] == 0.0
        assert result.connected[0]  # No demand -> not starved.

    def test_finite_demand_satisfied(self):
        topo = _two_cell_topology(separation_m=2000.0)
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        result = net.run_epoch(0, policy.decide(0, None), {0: 8000.0, 1: 0.0})
        assert result.served_bits[0] == pytest.approx(8000.0)

    def test_observations_structure(self):
        topo = _two_cell_topology()
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        result = net.run_epoch(0, policy.decide(0, None), {0: float("inf"), 1: float("inf")})
        obs = result.observations[0]
        assert obs.n_active_clients == 1
        assert obs.estimated_contenders >= 1
        client_obs = obs.clients[0]
        assert len(client_obs.subband_cqi) == net.grid.n_subchannels
        assert len(client_obs.interference_detected) == net.grid.n_subchannels

    def test_scheduled_fractions_reported(self):
        topo = _two_cell_topology(separation_m=2000.0)
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        result = net.run_epoch(0, policy.decide(0, None), {0: float("inf"), 1: 0.0})
        fractions = result.observations[0].clients[0].scheduled_fraction
        assert sum(fractions.values()) > 0.0

    def test_run_returns_each_epoch(self):
        topo = _two_cell_topology()
        net = _net(topo)
        policy = AllSubchannelsPolicy([0, 1], net.grid.n_subchannels)
        results = net.run(3, policy, lambda e: {0: float("inf"), 1: float("inf")})
        assert [r.epoch_index for r in results] == [0, 1, 2]

    def test_deterministic_given_seed(self):
        topo = _two_cell_topology(separation_m=600.0)
        a = _net(topo, seed=9)
        b = _net(topo, seed=9)
        policy = AllSubchannelsPolicy([0, 1], a.grid.n_subchannels)
        demands = {0: float("inf"), 1: float("inf")}
        ra = a.run(3, policy, lambda e: demands)
        rb = b.run(3, AllSubchannelsPolicy([0, 1], b.grid.n_subchannels), lambda e: demands)
        assert ra[-1].throughput_bps == rb[-1].throughput_bps


class TestInterferenceEffects:
    def test_full_overlap_hurts_cell_edge(self):
        # Two cells at medium range, clients between them: overlapping
        # allocations must reduce throughput vs orthogonal ones.
        topo = _two_cell_topology(separation_m=800.0, client_offset_m=380.0)
        net = _net(topo)
        demands = {0: float("inf"), 1: float("inf")}
        overlap = net.run_epoch(0, {0: set(range(13)), 1: set(range(13))}, demands)
        net2 = _net(topo)
        split = net2.run_epoch(
            0, {0: set(range(0, 6)), 1: set(range(6, 13))}, demands
        )
        total_overlap = sum(overlap.throughput_bps.values())
        total_split = sum(split.throughput_bps.values())
        assert total_split > total_overlap

    def test_starvation_flagged(self):
        # A client in deep interference must come out "not connected".
        topo = Topology(
            area_m=1000.0,
            aps=[AccessPointSite(0, 0.0, 0.0), AccessPointSite(1, 260.0, 0.0)],
            clients=[
                ClientSite(0, 130.0, 0.0, ap_id=0),
                # The interfering cell needs a backlogged client to be
                # active at all (idle cells do not transmit data).
                ClientSite(1, 250.0, 10.0, ap_id=1),
            ],
        )
        net = _net(topo)
        demands = {0: float("inf"), 1: float("inf")}
        starved_epochs = 0
        for epoch in range(10):
            result = net.run_epoch(
                epoch, {0: set(range(13)), 1: set(range(13))}, demands
            )
            if not result.connected[0]:
                starved_epochs += 1
        assert starved_epochs >= 1
