"""Determinism and resume semantics of the parallel sweep runner.

The contract under test: worker fan-out must never perturb results --
the same grid run with ``jobs=1`` and ``jobs=4`` produces identical
metrics (``RngStreams`` draws derive from cell params, not from
scheduling) -- and ``--resume`` against a half-written results log
recomputes exactly the missing cells.
"""

import json
import os

import pytest

from repro.experiments import sweep
from repro.experiments.sweep import (
    STATUS_OK,
    SweepSpec,
    SweepTask,
    config_hash,
    load_records,
    run_sweep,
)
from repro.sim.rng import RngStreams


@sweep.scenario("_runner_cell")
def _runner_cell(seed, scale=1.0):
    """Cheap deterministic cell: metrics derive only from the params."""
    rng = RngStreams(seed).stream("cell")
    draws = rng.random(8)
    return {
        "mean": float(draws.mean() * scale),
        "first": float(draws[0]),
        "seed": seed,
    }


def _spec(n=6, scale=1.0):
    return SweepSpec(
        "runner-grid",
        [
            SweepTask.make("_runner_cell", {"seed": seed, "scale": scale})
            for seed in range(n)
        ],
    )


class TestConfigHash:
    def test_param_order_irrelevant(self):
        a = config_hash("s", {"x": 1, "y": 2.5})
        b = config_hash("s", {"y": 2.5, "x": 1})
        assert a == b

    def test_distinct_configs_distinct_hashes(self):
        hashes = {
            config_hash("s", {"x": 1}),
            config_hash("s", {"x": 2}),
            config_hash("t", {"x": 1}),
        }
        assert len(hashes) == 3

    def test_task_hash_matches_free_function(self):
        task = SweepTask.make("s", {"x": 1, "y": "z"})
        assert task.config_hash == config_hash("s", {"y": "z", "x": 1})


class TestGrid:
    def test_cartesian_product_order(self):
        spec = SweepSpec.from_grid(
            "g", "_runner_cell", grid={"a": [1, 2], "b": [10, 20]}, base={"c": 0}
        )
        combos = [(t.params_dict["a"], t.params_dict["b"]) for t in spec.tasks]
        assert combos == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert all(t.params_dict["c"] == 0 for t in spec.tasks)

    def test_len(self):
        assert len(_spec(5)) == 5


class TestDeterminism:
    def test_inline_matches_subprocess(self):
        spec = _spec()
        inline = run_sweep(spec, jobs=0)
        forked = run_sweep(spec, jobs=2)
        assert inline.metrics_by_hash() == forked.metrics_by_hash()

    def test_jobs1_matches_jobs4_jsonl(self, tmp_path):
        spec = _spec(8)
        one = tmp_path / "jobs1.jsonl"
        four = tmp_path / "jobs4.jsonl"
        run_sweep(spec, jobs=1, out_path=one)
        run_sweep(spec, jobs=4, out_path=four)

        def metric_lines(path):
            return [
                (json.loads(line)["config_hash"], json.loads(line)["metrics"])
                for line in path.read_text().splitlines()
            ]

        assert metric_lines(one) == metric_lines(four)

    def test_canonical_log_ordered_by_task(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_sweep(_spec(6), jobs=3, out_path=out)
        ids = [json.loads(l)["task_id"] for l in out.read_text().splitlines()]
        assert ids == sorted(ids) == list(range(6))


class TestResume:
    def test_resume_recomputes_only_missing(self, tmp_path):
        spec = _spec(8)
        out = tmp_path / "sweep.jsonl"
        full = run_sweep(spec, jobs=2, out_path=out)
        assert full.computed == 8

        # Delete half the records (simulating an interrupted run).
        lines = out.read_text().splitlines()
        kept, dropped = lines[::2], lines[1::2]
        out.write_text("\n".join(kept) + "\n")

        resumed = run_sweep(spec, jobs=2, out_path=out, resume=True)
        assert resumed.computed == len(dropped)
        assert resumed.reused == len(kept)
        assert resumed.metrics_by_hash() == full.metrics_by_hash()
        # The rewritten log is complete and canonical again.
        assert [r.task_id for r in load_records(out)] == list(range(8))

    def test_resume_tolerates_truncated_line(self, tmp_path):
        spec = _spec(4)
        out = tmp_path / "sweep.jsonl"
        full = run_sweep(spec, jobs=1, out_path=out)
        text = out.read_text().splitlines()
        out.write_text("\n".join(text[:2]) + "\n" + text[3][: len(text[3]) // 2])
        resumed = run_sweep(spec, jobs=1, out_path=out, resume=True)
        assert resumed.reused == 2
        assert resumed.computed == 2
        assert resumed.metrics_by_hash() == full.metrics_by_hash()

    def test_resume_recomputes_failed_records(self, tmp_path):
        spec = _spec(3)
        out = tmp_path / "sweep.jsonl"
        full = run_sweep(spec, jobs=1, out_path=out)
        records = [json.loads(l) for l in out.read_text().splitlines()]
        records[1]["status"] = "failed"
        records[1]["metrics"] = {}
        out.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        resumed = run_sweep(spec, jobs=1, out_path=out, resume=True)
        assert resumed.reused == 2
        assert resumed.computed == 1
        assert resumed.metrics_by_hash() == full.metrics_by_hash()

    def test_without_resume_everything_recomputes(self, tmp_path):
        spec = _spec(3)
        out = tmp_path / "sweep.jsonl"
        run_sweep(spec, jobs=1, out_path=out)
        again = run_sweep(spec, jobs=1, out_path=out)
        assert again.computed == 3
        assert again.reused == 0

    def test_cache_ignores_records_from_other_configs(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_sweep(_spec(3, scale=1.0), jobs=1, out_path=out)
        changed = run_sweep(_spec(3, scale=2.0), jobs=1, out_path=out, resume=True)
        # scale changed -> different config hashes -> nothing reusable.
        assert changed.computed == 3
        assert changed.reused == 0
        assert all(r.status == STATUS_OK for r in changed.records)


class TestFigureGridDeterminism:
    """A real (LTE-family) figure grid is jobs-invariant end to end."""

    @pytest.fixture(scope="class")
    def grid(self):
        from repro.experiments.large_scale import (
            TECH_CELLFI,
            TECH_LTE,
            fig9a_sweep_spec,
        )

        return fig9a_sweep_spec(
            densities=(4, 5),
            seeds=(1, 2),
            techs=(TECH_LTE, TECH_CELLFI),
            clients_per_ap=3,
            epochs=3,
            wifi_duration_s=1.0,
        )

    def test_fanout_does_not_perturb_rng(self, grid):
        serial = run_sweep(grid, jobs=1)
        parallel = run_sweep(grid, jobs=4)
        assert serial.metrics_by_hash() == parallel.metrics_by_hash()

    def test_driver_inline_matches_sweep_workers(self, grid):
        inline = run_sweep(grid, jobs=0)
        forked = run_sweep(grid, jobs=2)
        assert inline.metrics_by_hash() == forked.metrics_by_hash()


@sweep.scenario("_ckpt_probe")
def _ckpt_probe(seed, checkpoint=None):
    """Reports what checkpoint spec (if any) the runner injected."""
    return {
        "seed": seed,
        "has_checkpoint": checkpoint is not None,
        "dir_tail": (
            None if checkpoint is None
            else os.path.basename(checkpoint["dir"])
        ),
        "every": None if checkpoint is None else checkpoint.get("every"),
    }


_ckpt_probe.supports_checkpoint = True


@sweep.scenario("_ckpt_preempted")
def _ckpt_preempted(seed, checkpoint=None):
    """Dies after writing a snapshot; a retry resumes from it."""
    assert checkpoint is not None, "runner must inject the checkpoint spec"
    os.makedirs(checkpoint["dir"], exist_ok=True)
    marker = os.path.join(checkpoint["dir"], "ckpt_000001.json")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("{}\n")
        raise RuntimeError("simulated preemption right after a snapshot")
    return {"seed": seed, "resumed": True}


_ckpt_preempted.supports_checkpoint = True


class TestCheckpointInjection:
    """run_sweep(checkpoint_dir=...) wires per-cell snapshot specs."""

    def _probe_spec(self, n=2):
        return SweepSpec(
            "ckpt-probe",
            [
                SweepTask.make("_ckpt_probe", {"seed": seed})
                for seed in range(n)
            ],
        )

    def test_cells_get_a_config_hash_keyed_directory(self, tmp_path):
        spec = self._probe_spec()
        result = run_sweep(
            spec, jobs=0, checkpoint_dir=tmp_path, checkpoint_every=5.0
        )
        for record, task in zip(result.records, spec.tasks):
            assert record.metrics["has_checkpoint"] is True
            assert record.metrics["dir_tail"] == task.config_hash
            assert record.metrics["every"] == 5.0

    def test_no_checkpoint_dir_means_no_injection(self):
        result = run_sweep(self._probe_spec(), jobs=0)
        for record in result.records:
            assert record.metrics["has_checkpoint"] is False

    def test_unsupporting_cells_are_left_alone(self, tmp_path):
        # _runner_cell has no supports_checkpoint attribute and no
        # checkpoint parameter; injecting would TypeError the cell.
        result = run_sweep(
            _spec(2), jobs=0, checkpoint_dir=tmp_path, checkpoint_every=1.0
        )
        assert all(r.status == STATUS_OK for r in result.records)

    def test_checkpoint_spec_does_not_perturb_cache_keys(self, tmp_path):
        out = tmp_path / "log.jsonl"
        run_sweep(
            self._probe_spec(),
            jobs=0,
            out_path=out,
            checkpoint_dir=tmp_path / "snaps",
            checkpoint_every=2.0,
        )
        resumed = run_sweep(
            self._probe_spec(), jobs=0, out_path=out, resume=True
        )
        assert resumed.computed == 0  # same hashes with and without ckpt

    def test_retry_resumes_from_the_snapshot(self, tmp_path):
        # retries exist only in the pool path (jobs=0 is single-attempt),
        # so this runs through real worker processes.
        spec = SweepSpec(
            "ckpt-preempt",
            [SweepTask.make("_ckpt_preempted", {"seed": 4})],
        )
        result = run_sweep(
            spec,
            jobs=2,
            retries=1,
            checkpoint_dir=tmp_path,
            checkpoint_every=1.0,
        )
        record = result.records[0]
        assert record.status == STATUS_OK
        assert record.attempts == 2
        assert record.metrics["resumed"] is True
