"""Metrics registry: counters, gauges, fixed-bucket histograms, series."""

import pytest

from repro.obs import (
    DEFAULT_EDGES,
    MetricsRegistry,
    merge_snapshots,
    percentile_from_hist,
)


class TestCounterGauge:
    def test_counter_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("sim.events")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_returns_same_counter(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.counter("x").value == 2.0

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("load").set(0.3)
        reg.gauge("load").set(0.9)
        assert reg.gauge("load").value == 0.9


class TestHistogram:
    def test_observe_lands_in_correct_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", edges=(1.0, 2.0, 4.0))
        hist.observe(0.5)   # <= 1.0
        hist.observe(1.5)   # <= 2.0
        hist.observe(3.0)   # <= 4.0
        hist.observe(100.0)  # overflow
        assert list(hist.counts) == [1, 1, 1, 1]
        assert hist.count == 4

    def test_boundary_value_goes_to_lower_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", edges=(1.0, 2.0))
        hist.observe(1.0)
        assert list(hist.counts) == [1, 0, 0]

    def test_unsorted_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", edges=(2.0, 1.0))

    def test_percentile_empty_histogram_is_zero(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", edges=(1.0, 2.0))
        assert hist.percentile(50.0) == 0.0

    def test_percentile_interpolates_within_bucket(self):
        # 100 observations uniformly counted in the (0, 10] bucket:
        # the median interpolates to the bucket midpoint.
        p = percentile_from_hist([10.0], [100, 0], 50.0)
        assert p == pytest.approx(5.0, abs=0.2)

    def test_percentile_monotone_in_q(self):
        edges = [1.0, 2.0, 4.0, 8.0]
        counts = [5, 10, 3, 1, 0]
        values = [percentile_from_hist(edges, counts, q) for q in (10, 50, 90, 99)]
        assert values == sorted(values)


class TestSeriesAndSnapshot:
    def test_tick_appends_series_point(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.tick(1.0)
        reg.counter("c").inc()
        reg.tick(2.0)
        snap = reg.snapshot()
        assert [pt["t"] for pt in snap["series"]] == [1.0, 2.0]
        assert snap["series"][0]["counters"]["c"] == 1.0
        assert snap["series"][1]["counters"]["c"] == 2.0

    def test_same_time_tick_overwrites(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.tick(1.0)
        reg.counter("c").inc()
        reg.tick(1.0)
        snap = reg.snapshot()
        assert len(snap["series"]) == 1
        assert snap["series"][0]["counters"]["c"] == 2.0

    def test_snapshot_keys_sorted_for_determinism(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
        snap = reg.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_default_edges_are_sorted(self):
        assert list(DEFAULT_EDGES) == sorted(DEFAULT_EDGES)


class TestScope:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scope = reg.scope("harq")
        scope.counter("blocks").inc()
        assert reg.counter("harq.blocks").value == 1.0


class TestMergeSnapshots:
    def _snap(self, n):
        reg = MetricsRegistry()
        reg.counter("events").inc(n)
        reg.gauge("load").set(n)
        reg.histogram("lat", edges=(1.0, 2.0)).observe(n)
        return reg.snapshot()

    def test_counters_add_and_gauges_keep_last(self):
        merged = merge_snapshots([self._snap(1), self._snap(2)])
        assert merged["cells"] == 2
        assert merged["counters"]["events"] == 3.0
        assert merged["gauges"]["load"] == 2.0

    def test_histogram_buckets_add(self):
        merged = merge_snapshots([self._snap(0.5), self._snap(1.5)])
        hist = merged["histograms"]["lat"]
        assert hist["counts"] == [1, 1, 0]
        assert hist["count"] == 2

    def test_empty_snapshots_skipped(self):
        merged = merge_snapshots([None, {}, self._snap(1)])
        assert merged["cells"] == 1
